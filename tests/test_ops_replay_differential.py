"""Differential tests: replayed op streams vs direct execution.

The op-stream IR's whole contract is that the execution strategy cannot
change the science: recording a kernel and re-pricing the stream — same
configuration, a sibling port configuration, or a different pricing
machine — must reproduce direct execution **bit-identically**: every
float in the :class:`CycleBreakdown`, every counter, energy, bandwidth,
DRAM traffic, and the cache statistics.

Covers every kernel family (the four SpMV formats, SpMA, SpMM, histogram,
stencil, CSR5), the four Fig. 9 ``dse_configs`` shape groups, disk
round-trips of the artifacts, and the end-to-end record/replay DSE.
"""

import dataclasses
import tempfile

import numpy as np
import pytest

from repro.errors import ReplayMismatchError
from repro.eval.dse import run_dse
from repro.formats.csb import CSBMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr5 import CSR5Matrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels.csr5_spmv import spmv_csr5_via
from repro.kernels.histogram import histogram_via
from repro.kernels.spma import spma_via
from repro.kernels.spmm import spmm_via
from repro.kernels.spmv import SPMV_VARIANTS
from repro.kernels.stencil import stencil_via
from repro.matrices.collection import small_collection
from repro.sim.backends import RecorderBackend, replay_recording
from repro.sim.config import DEFAULT_MACHINE
from repro.sim.ops import load_recordings, save_recordings
from repro.via.config import (
    VIA_4_2P,
    VIA_4_4P,
    VIA_16_2P,
    VIA_16_4P,
    dse_configs,
)

pytestmark = pytest.mark.smoke


def _bits(value) -> bytes:
    return np.float64(value).tobytes()


def assert_result_identical(got, want):
    """Every observable of a KernelResult, compared bitwise."""
    assert got.name == want.name
    for fld in ("cycles", "seconds", "energy_pj", "memory_bandwidth_gbs"):
        assert _bits(getattr(got, fld)) == _bits(getattr(want, fld)), fld
    assert got.dram_traffic_bytes == want.dram_traffic_bytes
    for k, w in want.breakdown.as_dict().items():
        g = getattr(got.breakdown, k, None)
        g = got.breakdown.as_dict()[k] if g is None else g
        if isinstance(w, float):
            assert _bits(g) == _bits(w), f"breakdown.{k}"
        else:
            assert g == w, f"breakdown.{k}"
    for k, w in want.counters.as_dict().items():
        g = got.counters.as_dict()[k]
        if isinstance(w, float):
            assert _bits(g) == _bits(w), f"counters.{k}"
        else:
            assert g == w, f"counters.{k}"
    assert got.cache_stats == want.cache_stats


@pytest.fixture(scope="module")
def coo():
    return small_collection(2, seed=11, max_n=160).specs[0].build()


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(3).standard_normal(coo.cols)


def _record(run):
    """Run a kernel callable with a recorder; return (result, recording)."""
    backend = RecorderBackend()
    result = run(backend)
    return result, backend.recording


# ----------------------------------------------------------------------
# per-kernel-family identity, recorded at 2 ports and replayed at 4
# ----------------------------------------------------------------------
class TestKernelFamilies:
    REC, TGT = VIA_16_2P, VIA_16_4P

    def _check(self, make_run):
        """make_run(cfg) -> callable(backend) -> KernelResult.

        Replays run under ``validate=True``: the runtime invariant checks
        must pass clean on every kernel family and never perturb results.
        """
        _, recording = _record(make_run(self.REC))
        want = make_run(self.TGT)(None)
        got = replay_recording(recording, via_config=self.TGT, validate=True)
        assert_result_identical(got, want)

    @pytest.mark.parametrize("fmt", sorted(SPMV_VARIANTS))
    def test_spmv_format(self, coo, x, fmt):
        def make_run(cfg):
            if fmt == "csr":
                mat = CSRMatrix.from_coo(coo)
            elif fmt == "csb":
                mat = CSBMatrix.from_coo(coo, block_size=cfg.csb_block_size)
            elif fmt == "spc5":
                mat = SPC5Matrix.from_coo(coo, vl=DEFAULT_MACHINE.vl)
            else:
                mat = SellCSigmaMatrix.from_coo(
                    coo, c=DEFAULT_MACHINE.vl, sigma=16 * DEFAULT_MACHINE.vl
                )
            _, via_fn = SPMV_VARIANTS[fmt]
            return lambda backend=None: via_fn(
                mat, x, DEFAULT_MACHINE, cfg, backend=backend
            )

        self._check(make_run)

    def test_spma(self, coo):
        a = CSRMatrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spma_via(
                a, a, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_spmm(self, coo):
        a = CSRMatrix.from_coo(coo)
        b = CSCMatrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spmm_via(
                a, b, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_histogram(self):
        keys = np.random.default_rng(5).integers(0, 256, size=1500)
        self._check(
            lambda cfg: lambda backend=None: histogram_via(
                keys, 256, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_stencil(self):
        image = np.random.default_rng(6).standard_normal((40, 40))
        self._check(
            lambda cfg: lambda backend=None: stencil_via(
                image, None, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_csr5(self, coo, x):
        m = CSR5Matrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spmv_csr5_via(
                m, x, DEFAULT_MACHINE, cfg, backend=backend
            )
        )


# ----------------------------------------------------------------------
# the four Fig. 9 configurations: two shape groups, replay across ports
# ----------------------------------------------------------------------
class TestDseConfigs:
    def test_every_config_replays_from_its_shape_group(self, coo, x):
        reps = {}
        for cfg in dse_configs():
            reps.setdefault(cfg.sram_kb, cfg)
        for cfg in dse_configs():
            rep = reps[cfg.sram_kb]
            csb = CSBMatrix.from_coo(coo, block_size=rep.csb_block_size)
            _, recording = _record(
                lambda backend=None: SPMV_VARIANTS["csb"][1](
                    csb, x, DEFAULT_MACHINE, rep, backend=backend
                )
            )
            want = SPMV_VARIANTS["csb"][1](csb, x, DEFAULT_MACHINE, cfg)
            got = replay_recording(recording, via_config=cfg, validate=True)
            assert_result_identical(got, want)

    def test_cross_capacity_replay_refuses(self, coo, x):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        with pytest.raises(ReplayMismatchError):
            replay_recording(recording, via_config=VIA_4_2P)
        with pytest.raises(ReplayMismatchError):
            replay_recording(recording, via_config=VIA_4_4P)

    def test_replay_rewrites_config_in_kernel_name(self, coo, x):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        got = replay_recording(recording, via_config=VIA_16_4P)
        assert VIA_16_4P.name in got.name
        assert VIA_16_2P.name not in got.name


# ----------------------------------------------------------------------
# artifact round-trip and cross-machine (slow-path) replay
# ----------------------------------------------------------------------
class TestRoundTripAndMachines:
    def test_disk_roundtrip_is_bit_identical(self, coo, x, tmp_path):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        want = SPMV_VARIANTS["csb"][1](csb, x, DEFAULT_MACHINE, VIA_16_4P)
        path = tmp_path / "rec.npz"
        save_recordings(path, {"k": recording})
        loaded, _ = load_recordings(path)
        got = replay_recording(loaded["k"], via_config=VIA_16_4P)
        assert_result_identical(got, want)
        np.testing.assert_array_equal(got.output, want.output)

    def test_cross_machine_replay_is_bit_identical(self, coo, x):
        # pricing knobs (DRAM latency, MLP) differ; stream shape does not —
        # this exercises the memory-pass slow path instead of stored state
        target = dataclasses.replace(
            DEFAULT_MACHINE,
            dram_latency=DEFAULT_MACHINE.dram_latency + 60,
            mlp_stream=DEFAULT_MACHINE.mlp_stream / 2,
        )
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        want = SPMV_VARIANTS["csb"][1](csb, x, target, VIA_16_4P)
        # validate=True exercises InvariantBackend on the memory-pass path
        got = replay_recording(
            recording, machine=target, via_config=VIA_16_4P, validate=True
        )
        assert_result_identical(got, want)

    def test_machine_shape_change_refuses(self, coo, x):
        lanes = dataclasses.replace(
            DEFAULT_MACHINE, vector_lanes=DEFAULT_MACHINE.vector_lanes * 2
        )
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        with pytest.raises(ReplayMismatchError):
            replay_recording(recording, machine=lanes, via_config=VIA_16_2P)


# ----------------------------------------------------------------------
# end-to-end: the Fig. 9 DSE in record/replay mode
# ----------------------------------------------------------------------
class TestDseEndToEnd:
    def test_record_replay_dse_matches_direct(self):
        coll = small_collection(3, seed=9, max_n=128)
        direct = run_dse(coll)
        with tempfile.TemporaryDirectory() as td:
            # validated record/replay: invariant checks ride every op and
            # must neither trip nor change a single bit of Fig. 9
            replayed = run_dse(coll, record_dir=td, validate=True)
            # a second, warm-store sweep replays everything and must agree
            warm = run_dse(coll, record_dir=td, validate=True)
        for kernel, per_config in direct.cycles.items():
            for cfg_name, want in per_config.items():
                assert _bits(replayed.cycles[kernel][cfg_name]) == _bits(want)
                assert _bits(warm.cycles[kernel][cfg_name]) == _bits(want)
