"""Histogram and stencil kernel tests (paper Section VII-D use cases)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    reference,
    stencil_vector_baseline,
    stencil_via,
)
from repro.via import VIA_4_2P, VIA_16_2P


@pytest.fixture(scope="module")
def keys():
    return np.random.default_rng(7).integers(0, 512, size=4000)


class TestHistogram:
    def test_all_variants_correct(self, keys):
        want = reference.histogram(keys, 512)
        for fn in (histogram_scalar_baseline, histogram_vector_baseline):
            np.testing.assert_array_equal(fn(keys, 512).output, want)
        np.testing.assert_array_equal(histogram_via(keys, 512).output, want)

    def test_via_beats_both_baselines(self, keys):
        s = histogram_scalar_baseline(keys, 512).cycles
        v = histogram_vector_baseline(keys, 512).cycles
        via = histogram_via(keys, 512).cycles
        assert s / via > 2.0
        assert v / via > 2.0

    def test_scalar_slowest_like_paper(self, keys):
        # paper Fig. 12a: VIA gains 5.49x over scalar > 4.51x over vector
        s = histogram_scalar_baseline(keys, 512).cycles
        v = histogram_vector_baseline(keys, 512).cycles
        assert s > v

    def test_via_functional_path_uses_sspm(self, keys):
        res = histogram_via(keys, 512, functional=True)
        assert res.counters.sspm_accesses > 0
        np.testing.assert_array_equal(res.output, reference.histogram(keys, 512))

    def test_bulk_path_matches_functional_timing(self, keys):
        f = histogram_via(keys, 512, functional=True)
        b = histogram_via(keys, 512, functional=False)
        assert b.cycles == pytest.approx(f.cycles, rel=0.02)
        np.testing.assert_array_equal(b.output, f.output)

    def test_bins_beyond_sspm_tile_into_passes(self):
        rng = np.random.default_rng(8)
        num_bins = VIA_4_2P.sram_entries * 3  # forces 3 passes on 4 KB
        ks = rng.integers(0, num_bins, size=2000)
        res = histogram_via(ks, num_bins, via_config=VIA_4_2P)
        np.testing.assert_array_equal(res.output, reference.histogram(ks, num_bins))
        # re-streamed keys: more key-line traffic than one pass
        one_pass = histogram_via(
            ks % VIA_4_2P.sram_entries, VIA_4_2P.sram_entries, via_config=VIA_4_2P
        )
        assert res.counters.mem_line_accesses > one_pass.counters.mem_line_accesses

    def test_skewed_keys_hurt_scalar_most(self):
        rng = np.random.default_rng(9)
        uniform = rng.integers(0, 512, size=4000)
        skewed = np.minimum((512 * rng.random(4000) ** 3).astype(int), 511)
        s_u = histogram_scalar_baseline(uniform, 512).cycles
        s_k = histogram_scalar_baseline(skewed, 512).cycles
        assert s_k > s_u  # same-bin chains serialize

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            histogram_via([1, 2], 0)
        with pytest.raises(ShapeError):
            histogram_via([5], 5)


class TestStencil:
    @pytest.fixture(scope="class")
    def image(self):
        return np.random.default_rng(10).standard_normal((30, 30))

    def test_baseline_correct(self, image):
        res = stencil_vector_baseline(image)
        want = reference.gaussian_filter(image, reference.gaussian_kernel_4x4())
        np.testing.assert_allclose(res.output, want, rtol=1e-9)

    def test_via_correct_functional(self, image):
        res = stencil_via(image, functional=True)
        want = reference.gaussian_filter(image, reference.gaussian_kernel_4x4())
        np.testing.assert_allclose(res.output, want, rtol=1e-9)

    def test_via_speedup_in_paper_band(self, image):
        b = stencil_vector_baseline(image).cycles
        v = stencil_via(image).cycles
        assert 2.0 < b / v < 6.0  # paper: 3.39x

    def test_bulk_path_matches_functional_timing(self, image):
        f = stencil_via(image, functional=True)
        b = stencil_via(image, functional=False)
        assert b.cycles == pytest.approx(f.cycles, rel=0.02)

    def test_custom_kernel(self, image):
        k = np.ones((3, 3)) / 9.0
        res = stencil_via(image, k, functional=True)
        np.testing.assert_allclose(
            res.output, reference.gaussian_filter(image, k), rtol=1e-9
        )

    def test_large_image_segments(self):
        # width * rows far beyond the 4 KB SSPM: must tile into segments
        img = np.random.default_rng(11).standard_normal((40, 100))
        res = stencil_via(img, functional=True, via_config=VIA_4_2P)
        want = reference.gaussian_filter(img, reference.gaussian_kernel_4x4())
        np.testing.assert_allclose(res.output, want, rtol=1e-9)

    def test_image_too_wide_for_sspm(self):
        img = np.zeros((8, VIA_4_2P.sram_entries * 2))
        with pytest.raises(ShapeError):
            stencil_via(img, via_config=VIA_4_2P)

    def test_baseline_has_gathers_via_does_not(self, image):
        b = stencil_vector_baseline(image)
        v = stencil_via(image)
        assert b.counters.gathers > 0
        assert v.counters.gathers == 0
