"""Tests for the execution-trace proxy and the report CLI."""

import numpy as np
import pytest

from repro.sim import Core, MachineConfig
from repro.sim.trace import Trace, TracedCore
from repro.via import VIA_16_2P, ViaDevice


class TestTrace:
    def test_mix_aggregates_counts(self):
        t = Trace()
        t.add("gather", count=3)
        t.add("gather", count=2)
        t.add("fma")
        assert t.mix() == {"gather": 5, "fma": 1}

    def test_filter(self):
        t = Trace()
        t.add("a")
        t.add("b")
        t.add("a")
        assert len(t.filter("a")) == 2

    def test_render_truncates(self):
        t = Trace()
        for i in range(50):
            t.add("op", f"ev{i}")
        text = t.render(limit=10)
        assert "40 more events" in text

    def test_render_full(self):
        t = Trace()
        t.add("op", "x")
        assert "op" in t.render(limit=None)


class TestTracedCore:
    def test_records_narrated_ops(self):
        core = TracedCore(Core(MachineConfig()))
        x = core.alloc("x", 100)
        core.load_stream(x, 0, 100)
        core.vector_op("fma", 5)
        core.scalar_ops(10)
        mix = core.trace.mix()
        assert "load_stream" in mix
        assert "vector_op" in mix
        assert "scalar_ops" in mix

    def test_timing_unchanged_by_tracing(self):
        def run(core):
            x = core.alloc("x", 2000)
            core.load_stream(x, 0, 2000)
            core.gather(x, np.arange(0, 2000, 7))
            core.vector_op("fma", 100)
            return core.finalize("t")

        plain = run(Core(MachineConfig()))
        traced = run(TracedCore(Core(MachineConfig())))
        assert traced.cycles == pytest.approx(plain.cycles)

    def test_via_ops_route_through_proxy(self):
        dev = ViaDevice(VIA_16_2P)
        core = TracedCore(Core(MachineConfig(), via=dev))
        dev.vidxload(np.ones(8), np.arange(8))
        # one event per VIA instruction: 8 elements / VL 4 = 2
        assert len(core.trace.filter("record_via_op")) == 2
        assert core.counters.via_instructions == 2

    def test_non_intercepted_attributes_pass_through(self):
        core = TracedCore(Core(MachineConfig()))
        assert core.machine.vl == 4
        assert core.counters.scalar_uops == 0

    def test_kernel_runs_through_traced_core(self):
        # a kernel function accepts the proxy transparently
        from repro.formats import CSRMatrix
        from repro.kernels.spmv import spmv_csr_baseline
        from repro.matrices import random_uniform

        coo = random_uniform(100, 0.05, 3)
        csr = CSRMatrix.from_coo(coo)
        x = np.zeros(100)
        res = spmv_csr_baseline(csr, x)
        assert res.cycles > 0  # plain path sanity
        # (kernels build their own Core; tracing is for direct model use)


class TestReportCli:
    def test_build_report_small(self):
        from repro.eval.report_cli import build_report

        text = build_report(matrices=3, max_n=256, include_dse=False,
                            log=lambda *_: None)
        for marker in ("T1", "T2", "F10", "F11", "F12a", "F12b"):
            assert marker in text
        assert "Figure 10" in text

    def test_old_module_name_still_imports_with_a_warning(self):
        import importlib
        import warnings

        import repro.eval.report as shim
        import repro.eval.report_cli as cli

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.reload(shim)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert shim.build_report is cli.build_report
        assert shim.main is cli.main

    def test_cli_main_writes_file(self, tmp_path, capsys):
        from repro.eval.report_cli import main

        out = tmp_path / "report.txt"
        rc = main(
            ["--matrices", "3", "--max-n", "256", "--skip-dse", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
        assert "Figure 10" in out.read_text()
