"""The repo passes its own static checker, baseline-free.

This is the in-tree twin of the CI ``analysis`` job: the full rule set
over ``src``, ``tests``, ``benchmarks``, and ``examples`` must produce
zero error findings with no baseline, and the runtime key-hygiene twin
must accept the live dataclasses.  A failure here means a config field
was added without keying it (or declaring it ``KEY_EXEMPT``), a
clock/RNG/env hazard crept into deterministic code, serve-layer shared
state lost its lock, a resource gained a path that leaks it, or an
unmapped exception type slipped into the serve error contract.
"""

from pathlib import Path

from repro.analysis.core import Project, run_analysis
from repro.analysis.keys import DEFAULT_BINDINGS, assert_key_hygiene, check_keys

REPO = Path(__file__).resolve().parent.parent

GATE_DIRS = ("src", "tests", "benchmarks", "examples")


def _project(*subdirs):
    return Project([REPO / d for d in subdirs], root=REPO)


def test_repo_gate_is_clean_without_a_baseline():
    report = run_analysis(_project(*GATE_DIRS))
    assert [f.render() for f in report.errors] == []
    assert report.exit_code == 0


def test_every_default_binding_resolves():
    # VIA100 from the repo's own bindings means a module/class/function in
    # the key-coverage contract was renamed without updating the checker
    findings = check_keys(_project("src"), bindings=DEFAULT_BINDINGS)
    assert [f.render() for f in findings if f.rule == "VIA100"] == []


def test_runtime_hygiene_accepts_the_live_dataclasses():
    assert_key_hygiene()
    assert_key_hygiene()  # second call exercises the memoized fast path
