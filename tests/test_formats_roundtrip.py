"""Round-trip and cross-format equivalence tests for every sparse format."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSBMatrix,
    CSCMatrix,
    CSRMatrix,
    SPC5Matrix,
    SellCSigmaMatrix,
    convert,
)

ALL_FORMATS = ["coo", "csr", "csc", "csb", "spc5", "sellcs"]


def random_dense(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    dense = np.zeros((rows, cols))
    n = max(1, int(rows * cols * density))
    idx = rng.choice(rows * cols, size=n, replace=False)
    dense.ravel()[idx] = rng.standard_normal(n)
    return dense


@pytest.fixture(params=[(8, 8, 0.3, 0), (40, 23, 0.08, 1), (100, 100, 0.01, 2)])
def dense(request):
    return random_dense(*request.param)


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_roundtrip_through_coo(dense, name):
    coo = COOMatrix.from_dense(dense)
    mat = convert(coo, name)
    assert mat.shape == coo.shape
    np.testing.assert_allclose(mat.to_dense(), dense)


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_nnz_preserved(dense, name):
    coo = COOMatrix.from_dense(dense)
    mat = convert(coo, name)
    assert mat.nnz == coo.nnz


@pytest.mark.parametrize("src", ALL_FORMATS)
@pytest.mark.parametrize("dst", ALL_FORMATS)
def test_pairwise_conversion(src, dst):
    dense = random_dense(17, 31, 0.15, 42)
    a = convert(COOMatrix.from_dense(dense), src)
    b = convert(a, dst)
    np.testing.assert_allclose(b.to_dense(), dense)


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_empty_matrix(name):
    empty = COOMatrix.empty((5, 7))
    mat = convert(empty, name)
    assert mat.nnz == 0
    assert mat.to_dense().shape == (5, 7)
    np.testing.assert_array_equal(mat.to_dense(), 0.0)


def test_coo_duplicate_summing():
    coo = COOMatrix((3, 3), [0, 0, 1], [1, 1, 2], [2.0, 3.0, 4.0])
    assert coo.nnz == 2
    assert coo.to_dense()[0, 1] == 5.0


def test_coo_transpose():
    dense = random_dense(6, 9, 0.3, 7)
    coo = COOMatrix.from_dense(dense)
    np.testing.assert_allclose(coo.transpose().to_dense(), dense.T)


def test_csr_csc_transpose_swap():
    dense = random_dense(12, 5, 0.25, 3)
    csr = CSRMatrix.from_dense(dense)
    csc = csr.transpose()
    assert isinstance(csc, CSCMatrix)
    np.testing.assert_allclose(csc.to_dense(), dense.T)
    back = csc.transpose()
    assert isinstance(back, CSRMatrix)
    np.testing.assert_allclose(back.to_dense(), dense)


def test_csr_spmv_reference():
    dense = random_dense(20, 20, 0.2, 11)
    x = np.random.default_rng(0).standard_normal(20)
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.spmv_reference(x), dense @ x)


def test_csb_merged_index_split():
    dense = random_dense(30, 30, 0.1, 5)
    csb = CSBMatrix.from_dense(dense, block_size=8)
    assert csb.col_bits == 3
    r, c = csb.split_idx(csb.idx)
    assert r.max() < 8 and c.max() < 8


def test_csb_block_iteration_covers_all_entries():
    dense = random_dense(50, 50, 0.05, 9)
    csb = CSBMatrix.from_dense(dense, block_size=16)
    total = sum(len(v) for *_coords, _i, v in csb.iter_blocks())
    assert total == csb.nnz
    assert np.all(csb.nnz_per_block() > 0)


def test_spc5_masks_and_fill_ratio():
    dense = np.zeros((4, 16))
    dense[0, 0:4] = 1.0  # one dense run -> single block, 4 lanes
    dense[1, 8] = 2.0
    spc5 = SPC5Matrix.from_dense(dense, vl=8)
    assert spc5.num_blocks == 2
    assert 0.0 < spc5.fill_ratio() <= 1.0
    np.testing.assert_allclose(spc5.to_dense(), dense)


def test_spc5_block_lane_cols():
    dense = np.zeros((2, 10))
    dense[0, [1, 3, 4]] = [1.0, 2.0, 3.0]
    spc5 = SPC5Matrix.from_dense(dense, vl=8)
    np.testing.assert_array_equal(spc5.block_lane_cols(0), [1, 3, 4])


def test_sellcs_padding_and_perm():
    dense = random_dense(37, 29, 0.1, 13)
    m = SellCSigmaMatrix.from_dense(dense, c=4, sigma=16)
    assert m.padded_entries >= m.nnz
    assert 0.0 <= m.padding_ratio() < 1.0
    # permutation covers all rows exactly once
    assert sorted(m.perm.tolist()) == list(range(37))
    np.testing.assert_allclose(m.to_dense(), dense)


def test_sellcs_chunk_lengths_are_window_maxima():
    dense = np.zeros((8, 20))
    dense[0, :5] = 1.0
    dense[3, :2] = 1.0
    m = SellCSigmaMatrix.from_dense(dense, c=4, sigma=8)
    # first chunk holds the longest rows after local sort
    assert int(m.chunk_len[0]) == 5
