"""Unit tests for the Smart Scratchpad Memory (paper Section IV-A)."""

import numpy as np
import pytest

from repro.errors import SSPMCapacityError, SSPMError
from repro.via import SSPM, ViaConfig


@pytest.fixture
def sspm():
    return SSPM(ViaConfig(4, 2))


class TestDirectMapped:
    def test_write_then_read(self, sspm):
        sspm.dm_write([3, 5], [1.5, 2.5])
        np.testing.assert_allclose(sspm.dm_read([3, 5]), [1.5, 2.5])

    def test_unwritten_reads_zero(self, sspm):
        np.testing.assert_allclose(sspm.dm_read([0, 100]), [0.0, 0.0])

    def test_valid_bitmap_distinguishes_written_zero(self, sspm):
        sspm.dm_write([7], [0.0])
        # the entry holds an explicit zero; a read returns it
        assert sspm.dm_read([7])[0] == 0.0
        sspm.dm_accumulate([7], [2.0])
        assert sspm.dm_read([7])[0] == 2.0

    def test_accumulate_from_invalid_starts_at_zero(self, sspm):
        out = sspm.dm_accumulate([9], [4.0])
        assert out[0] == 4.0
        assert sspm.dm_read([9])[0] == 4.0

    def test_accumulate_ops(self, sspm):
        sspm.dm_write([1], [10.0])
        assert sspm.dm_accumulate([1], [3.0], op="add")[0] == 13.0
        assert sspm.dm_accumulate([1], [3.0], op="sub")[0] == 10.0
        assert sspm.dm_accumulate([1], [2.0], op="mult")[0] == 20.0

    def test_accumulate_duplicate_lanes_combine_in_order(self, sspm):
        sspm.dm_accumulate([4, 4, 4], [1.0, 2.0, 3.0])
        assert sspm.dm_read([4])[0] == 6.0

    def test_unknown_accumulate_op(self, sspm):
        with pytest.raises(SSPMError):
            sspm.dm_accumulate([0], [1.0], op="xor")

    def test_index_out_of_range(self, sspm):
        entries = sspm.config.sram_entries
        with pytest.raises(SSPMError):
            sspm.dm_write([entries], [1.0])
        with pytest.raises(SSPMError):
            sspm.dm_read([-1])

    def test_shape_mismatch(self, sspm):
        with pytest.raises(SSPMError):
            sspm.dm_write([1, 2], [1.0])
        with pytest.raises(SSPMError):
            sspm.dm_accumulate([1, 2], [1.0])

    def test_counters_track_events(self, sspm):
        sspm.dm_write([1, 2], [1.0, 2.0])
        sspm.dm_read([1])
        assert sspm.counters.dm_writes == 2
        assert sspm.counters.dm_reads == 1


class TestClear:
    def test_full_clear_invalidates_everything(self, sspm):
        sspm.dm_write([0, 10], [1.0, 2.0])
        sspm.clear()
        np.testing.assert_allclose(sspm.dm_read([0, 10]), [0.0, 0.0])

    def test_segment_clear_leaves_rest(self, sspm):
        sspm.dm_write([5, 50], [1.0, 2.0])
        sspm.clear(segment=(0, 20))
        assert sspm.dm_read([5])[0] == 0.0
        assert sspm.dm_read([50])[0] == 2.0

    def test_clear_resets_cam_state(self, sspm):
        sspm.cam_write([100, 200], [1.0, 2.0])
        assert sspm.element_count == 2
        sspm.clear()
        assert sspm.element_count == 0
        vals, matched = sspm.cam_read([100])
        assert not matched[0]

    def test_segment_out_of_range(self, sspm):
        with pytest.raises(SSPMError):
            sspm.clear(segment=(0, sspm.config.sram_entries + 1))
        with pytest.raises(SSPMError):
            sspm.clear(segment=(-1, 5))


class TestCAM:
    def test_insert_and_read(self, sspm):
        sspm.cam_write([1000, 2000], [1.0, 2.0])
        vals, matched = sspm.cam_read([2000, 1000, 3000])
        np.testing.assert_allclose(vals, [2.0, 1.0, 0.0])
        np.testing.assert_array_equal(matched, [True, True, False])

    def test_rewrite_updates_in_place(self, sspm):
        sspm.cam_write([42], [1.0])
        sspm.cam_write([42], [9.0])
        assert sspm.element_count == 1
        vals, _ = sspm.cam_read([42])
        assert vals[0] == 9.0

    def test_accumulating_write(self, sspm):
        sspm.cam_write([7], [3.0], op="add")
        sspm.cam_write([7], [4.0], op="add")
        vals, _ = sspm.cam_read([7])
        assert vals[0] == 7.0

    def test_insertion_is_in_order(self, sspm):
        sspm.cam_write([30, 10, 20], [3.0, 1.0, 2.0])
        idx = sspm.cam_tracked_indices(0, 3)
        np.testing.assert_array_equal(idx, [30, 10, 20])
        vals = sspm.cam_slot_values(0, 3)
        np.testing.assert_allclose(vals, [3.0, 1.0, 2.0])

    def test_tracked_indices_past_count_are_minus_one(self, sspm):
        sspm.cam_write([5], [1.0])
        idx = sspm.cam_tracked_indices(0, 4)
        np.testing.assert_array_equal(idx, [5, -1, -1, -1])

    def test_capacity_overflow_raises(self):
        small = SSPM(ViaConfig(4, 2))
        cap = small.config.cam_entries
        small.cam_write(np.arange(cap), np.ones(cap))
        with pytest.raises(SSPMCapacityError):
            small.cam_write([10**6], [1.0])

    def test_element_count_register(self, sspm):
        assert sspm.element_count == 0
        sspm.cam_write([1, 2, 3], [1.0, 1.0, 1.0])
        assert sspm.element_count == 3

    def test_bad_windows_rejected(self, sspm):
        with pytest.raises(SSPMError):
            sspm.cam_tracked_indices(-1, 2)
        with pytest.raises(SSPMError):
            sspm.cam_slot_values(0, -2)

    def test_unknown_cam_op(self, sspm):
        with pytest.raises(SSPMError):
            sspm.cam_write([1], [1.0], op="max")

    def test_search_counters_and_banks(self, sspm):
        sspm.cam_write(np.arange(20), np.ones(20))
        before = sspm.counters.cam_searches
        sspm.cam_read([0])
        assert sspm.counters.cam_searches == before + 1
        assert sspm.active_banks() == -(-20 // 8)

    def test_bank_activations_grow_with_occupancy(self):
        s = SSPM(ViaConfig(16, 2))
        s.cam_write(np.arange(8), np.ones(8))
        a1 = s.counters.bank_activations
        s.counters.bank_activations = 0
        s.cam_write(np.arange(100, 164), np.ones(64))
        a2 = s.counters.bank_activations
        assert a2 > a1  # more live banks -> more compare energy per search


class TestGeometry:
    def test_entries_follow_config(self):
        cfg = ViaConfig(16, 2)
        s = SSPM(cfg)
        assert cfg.sram_entries == 16 * 1024 // 4
        assert cfg.cam_entries == 4 * 1024 // 4
        assert s.config.csb_block_size == cfg.sram_entries // 2

    def test_config_names(self):
        assert ViaConfig(16, 2).name == "16_2p"
        assert ViaConfig(4, 4).name == "4_4p"

    def test_counters_as_dict(self, sspm):
        sspm.dm_write([1], [1.0])
        d = sspm.counters.as_dict()
        assert d["dm_writes"] == 1
