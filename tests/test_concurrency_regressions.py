"""Regressions for the thread-safety bugs the static checker's audit found.

Two fixes are pinned here:

* the per-recording machine memo in :func:`repro.sim.backends.replay_recording`
  was a check-then-act on a plain dict; concurrent cross-machine replays of
  one shared :class:`~repro.sim.ops.Recording` (the recording store hands the
  same object to every executor thread) could double-build cores and race the
  dict.  Now a lock plus ``setdefault`` makes the first core win: concurrent
  replays stay bit-identical to direct execution and exactly one core is
  memoized per target machine;
* :class:`~repro.serve.scheduler.Scheduler` once mutated
  ``Job.cancel_requested`` and ``Job.abandoned`` across the loop↔executor
  boundary with no lock.  Execution now lives in subprocess pool workers
  (:mod:`repro.serve.pool`), and the observable contract got stronger:
  cancelling a *running* sleep job SIGKILLs its worker and resolves the
  job ``cancelled`` promptly instead of sleeping out the full duration —
  and the pool respawns the slot, so the service keeps serving.
"""

import asyncio
import dataclasses
import threading
import time

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.spmv import SPMV_VARIANTS
from repro.matrices.collection import small_collection
from repro.serve.jobs import JobSpec, JobState
from repro.serve.scheduler import Scheduler, ServiceConfig
from repro.sim.backends import RecorderBackend, replay_recording
from repro.sim.config import DEFAULT_MACHINE
from repro.via.config import VIA_16_2P

from tests.test_ops_replay_differential import assert_result_identical


def test_concurrent_cross_machine_replay_shares_one_memo_entry():
    coo = small_collection(1, seed=11, max_n=160).specs[0].build()
    x = np.random.default_rng(3).standard_normal(coo.cols)
    mat = CSRMatrix.from_coo(coo)
    _, via_fn = SPMV_VARIANTS["csr"]

    backend = RecorderBackend()
    via_fn(mat, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend)
    recording = backend.recording

    # a pure-pricing knob: stream-shape compatible, so replay takes the
    # cross-machine path that builds and memoizes a fresh core
    target = dataclasses.replace(
        DEFAULT_MACHINE, dram_latency=DEFAULT_MACHINE.dram_latency + 40
    )
    want = via_fn(mat, x, target, VIA_16_2P)

    n_threads = 8
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads
    errors = []

    def worker(i):
        try:
            barrier.wait(timeout=30)  # maximise overlap on the cold memo
            results[i] = replay_recording(recording, machine=target)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)

    assert errors == []
    for got in results:
        assert got is not None
        assert_result_identical(got, want)
    # check-then-act would have installed whichever duplicate core lost
    # the race; setdefault-under-lock leaves exactly one per machine
    assert len(recording._machine_memo) == 1


def test_cancel_while_running_kills_the_worker_promptly():
    async def case():
        s = Scheduler(ServiceConfig(batch_window_s=0.0))
        await s.start()
        job = s.submit(
            JobSpec.from_payload(
                {"kind": "sleep", "duration_s": 5.0, "timeout_s": 30.0}
            )
        )
        for _ in range(500):
            if job.state is JobState.RUNNING:
                break
            await asyncio.sleep(0.01)
        assert job.state is JobState.RUNNING

        begin = time.monotonic()
        s.cancel(job.job_id)
        done = await s.wait(job.job_id, timeout=10)
        elapsed = time.monotonic() - begin

        # the pool killed the sleeping worker instead of waiting it out;
        # pre-pool behaviour slept the full 5 s before completing
        assert elapsed < 2.0
        assert done.state is JobState.CANCELLED
        assert done.error["code"] == "cancelled"

        # the killed slot respawned: the service keeps serving
        ok = s.submit(JobSpec(kind="report"))
        assert (await s.wait(ok.job_id, timeout=30)).state is JobState.DONE
        await s.stop()

    asyncio.run(case())
