"""Public-API contract tests: the names README documents must exist."""

import importlib
import inspect

import pytest

import repro
from repro.errors import (
    ConfigError,
    FormatError,
    ISAError,
    ReproError,
    ShapeError,
    SimulationError,
    SSPMCapacityError,
    SSPMError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            FormatError,
            ShapeError,
            ConfigError,
            SSPMError,
            SSPMCapacityError,
            ISAError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_shape_is_a_format_error(self):
        assert issubclass(ShapeError, FormatError)

    def test_capacity_is_an_sspm_error(self):
        assert issubclass(SSPMCapacityError, SSPMError)

    def test_catching_repro_error_covers_library_failures(self):
        from repro.formats import COOMatrix

        with pytest.raises(ReproError):
            COOMatrix((2, 2), [9], [0], [1.0])


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_single_sourced_from_pyproject(self):
        # repro.__version__ derives from package metadata (or, on a bare
        # source checkout, from pyproject.toml itself) — never a literal
        # that can drift from the build configuration
        import re
        from pathlib import Path

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert repro.__version__ == declared

    def test_docstring_quickstart_is_executable(self):
        # the module docstring carries a quickstart; keep it honest
        doc = repro.__doc__
        assert "spmv_csb_via" in doc
        lines = [
            l[4:]
            for l in doc.splitlines()
            if l.startswith("    ") and not l.strip().startswith(">>>")
        ]
        code = "\n".join(lines)
        namespace: dict = {}
        exec(compile(code, "<docstring>", "exec"), namespace)  # runs the demo

    @pytest.mark.parametrize(
        "module",
        [
            "repro.formats",
            "repro.matrices",
            "repro.sim",
            "repro.via",
            "repro.kernels",
            "repro.eval",
        ],
    )
    def test_subpackages_document_themselves(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_public_kernels_have_docstrings(self):
        import repro.kernels as k

        for name in k.__all__:
            obj = getattr(k, name)
            if inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
