"""Scheduler behaviour: admission, shedding, batching, deadlines, drain.

These tests drive :class:`repro.serve.scheduler.Scheduler` directly inside
``asyncio.run`` — no sockets — so each policy is observable in isolation:
load shedding returns ``queue_full`` with a retry hint, priorities reorder
dispatch, compatible replay requests share one batch (and one recording),
deadlines fail stale queued work, cancellation and drain produce
structured ``cancelled`` payloads, and per-job timeouts abandon the
executor thread without wedging the service.
"""

import asyncio

import pytest

from repro.errors import AdmissionError
from repro.serve.jobs import JobSpec, JobState
from repro.serve.scheduler import Scheduler, ServiceConfig


def run(coro):
    return asyncio.run(coro)


def sleep_spec(duration=0.05, **kw):
    return JobSpec.from_payload({"kind": "sleep", "duration_s": duration, **kw})


async def _started(config=None, **kw):
    scheduler = Scheduler(config or ServiceConfig(**kw))
    await scheduler.start()
    return scheduler


class TestAdmission:
    def test_submit_executes_and_completes(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            job = s.submit(JobSpec(kind="report"))
            done = await s.wait(job.job_id, timeout=10)
            assert done.state is JobState.DONE
            assert "Table" in done.result["text"] or "SSPM" in done.result["text"]
            assert s.metrics.snapshot()["jobs_completed"] == 1
            await s.stop()

        run(case())

    def test_queue_full_sheds_with_retry_hint(self):
        async def case():
            s = await _started(
                max_queue=2, batch_window_s=5.0, retry_after_s=0.5
            )
            # the 5s batch window keeps everything queued during the burst
            s.submit(sleep_spec())
            s.submit(sleep_spec())
            with pytest.raises(AdmissionError) as info:
                s.submit(sleep_spec())
            assert info.value.code == "queue_full"
            assert info.value.retry_after_s == 0.5
            assert s.metrics.snapshot()["jobs_shed"] == 1
            await s.stop()

        run(case())

    def test_unknown_job_id(self):
        async def case():
            s = await _started()
            from repro.errors import ServeError

            with pytest.raises(ServeError) as info:
                s.get("job-999999")
            assert info.value.code == "not_found"
            await s.stop()

        run(case())


class TestPrioritiesAndBatching:
    def test_higher_priority_dispatches_first(self):
        async def case():
            # one executor thread + a long batch window: all three jobs
            # land in one dispatch cycle, then run strictly sequentially
            s = await _started(
                batch_window_s=0.1, executor_workers=1, max_batch=1
            )
            low = s.submit(sleep_spec(0.01, priority=0, seed=1))
            mid = s.submit(sleep_spec(0.01, priority=5, seed=2))
            high = s.submit(sleep_spec(0.01, priority=9, seed=3))
            jobs = [low, mid, high]
            for j in jobs:
                await s.wait(j.job_id, timeout=10)
            order = sorted(jobs, key=lambda j: j.started_at)
            assert [j.job_id for j in order] == [
                high.job_id, mid.job_id, low.job_id
            ]
            await s.stop()

        run(case())

    def test_compatible_replays_share_one_batch_and_recording(self):
        async def case():
            s = await _started(batch_window_s=0.1, max_batch=16)
            specs = [
                JobSpec(kind="replay", kernel="spma", count=1, seed=42,
                        max_n=96, ports=p)
                for p in (1, 2, 4, 8)
            ]
            jobs = [s.submit(spec) for spec in specs]
            for j in jobs:
                await s.wait(j.job_id, timeout=60)
            assert all(j.state is JobState.DONE for j in jobs)
            assert all(j.batch_size == 4 for j in jobs)
            snap = s.metrics.snapshot()
            assert snap["batches_executed"] == 1
            assert snap["jobs_batched"] == 4
            # first job records; the other three replay the stored streams
            assert snap["replay_hits"] == 3
            assert snap["replay_misses"] == 1
            await s.stop()

        run(case())

    def test_replay_matches_direct_simulation_bit_identically(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            direct = s.submit(
                JobSpec(kind="simulate", kernel="spma", count=1, seed=9,
                        max_n=96, ports=4)
            )
            replayed = s.submit(
                JobSpec(kind="replay", kernel="spma", count=1, seed=9,
                        max_n=96, ports=4)
            )
            d = await s.wait(direct.job_id, timeout=60)
            r = await s.wait(replayed.job_id, timeout=60)
            assert d.result["records"] == r.result["records"]
            await s.stop()

        run(case())

    def test_sweep_expands_per_config_on_one_recording(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            job = s.submit(
                JobSpec(kind="sweep", kernel="spma", count=1, seed=5,
                        max_n=96, sram_kb=16, port_sweep=(1, 2, 4))
            )
            done = await s.wait(job.job_id, timeout=120)
            assert done.state is JobState.DONE
            configs = done.result["configs"]
            assert sorted(configs) == ["16_1p", "16_2p", "16_4p"]
            for payload in configs.values():
                assert payload["geomean_speedup"]["csr"] > 0
            snap = s.metrics.snapshot()
            assert snap["replay_hits"] >= 2  # configs 2 and 3 reuse config 1's
            await s.stop()

        run(case())

    def test_incompatible_kinds_do_not_batch(self):
        async def case():
            s = await _started(batch_window_s=0.1)
            a = s.submit(JobSpec(kind="simulate", count=1, seed=3, max_n=96))
            b = s.submit(JobSpec(kind="report"))
            await s.wait(a.job_id, timeout=60)
            await s.wait(b.job_id, timeout=60)
            assert s.metrics.snapshot()["batches_executed"] == 2
            await s.stop()

        run(case())

    def test_repeat_requests_hit_the_result_cache(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            spec = JobSpec(kind="simulate", count=1, seed=11, max_n=96)
            first = s.submit(spec)
            await s.wait(first.job_id, timeout=60)
            second = s.submit(spec)
            done = await s.wait(second.job_id, timeout=60)
            assert done.result["counters"]["units_cached"] == 1
            assert s.metrics.snapshot()["cache_hits"] >= 1
            assert done.result["records"] == first.result["records"]
            await s.stop()

        run(case())


class TestDeadlinesTimeoutsCancellation:
    def test_deadline_expired_in_queue_fails_structured(self):
        async def case():
            s = await _started(batch_window_s=0.3, executor_workers=1)
            job = s.submit(sleep_spec(0.01, deadline_s=0.05))
            await asyncio.sleep(0.1)  # deadline passes inside the window
            done = await s.wait(job.job_id, timeout=10)
            assert done.state is JobState.FAILED
            assert done.error["code"] == "deadline_exceeded"
            assert done.error["retry_after_s"] > 0
            await s.stop()

        run(case())

    def test_execution_timeout_abandons_and_reports(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            job = s.submit(sleep_spec(5.0, timeout_s=0.1))
            done = await s.wait(job.job_id, timeout=10)
            assert done.state is JobState.FAILED
            assert done.error["code"] == "timeout"
            assert done.abandoned
            # the service keeps serving after the abandoned thread
            ok = s.submit(JobSpec(kind="report"))
            assert (await s.wait(ok.job_id, timeout=10)).state is JobState.DONE
            await s.stop()

        run(case())

    def test_cancel_queued_job(self):
        async def case():
            s = await _started(batch_window_s=5.0)  # held in the window
            job = s.submit(sleep_spec(1.0))
            cancelled = s.cancel(job.job_id)
            assert cancelled.state is JobState.CANCELLED
            assert cancelled.error["code"] == "cancelled"
            done = await s.wait(job.job_id, timeout=1)  # already terminal
            assert done.state is JobState.CANCELLED
            assert s.metrics.snapshot()["jobs_cancelled"] == 1
            await s.stop()

        run(case())

    def test_cancel_terminal_job_is_idempotent(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            job = s.submit(JobSpec(kind="report"))
            await s.wait(job.job_id, timeout=10)
            again = s.cancel(job.job_id)
            assert again.state is JobState.DONE  # unchanged
            await s.stop()

        run(case())


class TestDrain:
    def test_drain_cancels_queued_completes_inflight(self):
        async def case():
            s = await _started(batch_window_s=0.0, executor_workers=1,
                               max_batch=1)
            running = s.submit(sleep_spec(0.3))
            # give the batcher a tick to dispatch the first job
            await asyncio.sleep(0.1)
            queued = [s.submit(sleep_spec(0.2)) for _ in range(3)]
            summary = await s.drain()
            assert summary["cancelled"] >= 1
            done = await s.wait(running.job_id, timeout=5)
            assert done.state is JobState.DONE  # in-flight ran to completion
            for job in queued:
                j = await s.wait(job.job_id, timeout=5)
                if j.state is JobState.CANCELLED:
                    assert j.error["code"] == "drained"
                else:  # dispatched before the drain flushed the queue
                    assert j.state is JobState.DONE
            await s.stop()

        run(case())

    def test_submissions_after_drain_are_refused(self):
        async def case():
            s = await _started()
            await s.drain()
            with pytest.raises(AdmissionError) as info:
                s.submit(JobSpec(kind="report"))
            assert info.value.code == "draining"
            await s.stop()

        run(case())

    def test_failing_unit_reports_unit_failed(self):
        async def case():
            s = await _started(batch_window_s=0.0)
            # break the workload by pointing replay at an unwritable
            # record dir: the first (recording) job must fail structurally
            s.record_dir = "/proc/definitely-not-writable/recordings"
            job = s.submit(JobSpec(kind="replay", count=1, seed=2, max_n=96))
            done = await s.wait(job.job_id, timeout=60)
            assert done.state is JobState.FAILED
            assert done.error["code"] in ("unit_failed", "internal",
                                          "repro_error")
            assert done.error["reason"]
            await s.stop()

        run(case())
