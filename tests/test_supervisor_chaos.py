"""Chaos tests: the supervised runner under worker murder and hangs.

The acceptance bar for the supervised execution layer: a sweep whose
workers are SIGKILLed mid-unit and whose units sleep past the wall-clock
timeout must still complete, record the failures with their full retry
history, and a subsequent ``resume=`` run must recompute *only* the failed
units and land bit-identical to an undisturbed sequential run.

Fault injection rides the :data:`~repro.eval.units.UNIT_KINDS` registry
(fork-based workers inherit it).  The injected kinds delegate the actual
computation to the real ``spmv`` path, so their records are bit-comparable
to plain units:

* ``chaos_kill_once`` — SIGKILLs its own worker on the first attempt (a
  sentinel file remembers the murder), computes normally on retry;
* ``chaos_sleepy`` — sleeps far past the sweep timeout while a flag file
  exists, computes normally once the flag is gone.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import SweepInterrupted
from repro.eval import RunnerConfig, WorkUnit, run_units, spmv_units
from repro.eval import units as units_mod
from repro.eval.units import compute_unit
from repro.matrices import small_collection

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.skipif(
        not hasattr(os, "fork"), reason="chaos kinds need fork workers"
    ),
]


def _as_spmv(unit: WorkUnit):
    """Delegate to the real spmv computation (bit-identical records)."""
    return compute_unit(dataclasses.replace(unit, kind="spmv"))


def _kill_once(unit: WorkUnit):
    sentinel = Path(unit.record_dir) / f"killed-{unit.spec.name}"
    if not sentinel.exists():
        sentinel.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return _as_spmv(unit)


def _sleepy(unit: WorkUnit):
    if (Path(unit.record_dir) / "slow-mode").exists():
        time.sleep(30)
    return _as_spmv(unit)


@pytest.fixture(autouse=True)
def _chaos_kinds():
    units_mod.UNIT_KINDS["chaos_kill_once"] = _kill_once
    units_mod.UNIT_KINDS["chaos_sleepy"] = _sleepy
    yield
    units_mod.UNIT_KINDS.pop("chaos_kill_once", None)
    units_mod.UNIT_KINDS.pop("chaos_sleepy", None)


def _chaos_units(tmp_path):
    """Three healthy units, one worker-killer, one sleeper."""
    coll = small_collection(5, seed=31, max_n=128)
    plain = spmv_units(coll, formats=("csr",))
    units = list(plain)
    units[1] = dataclasses.replace(
        units[1], kind="chaos_kill_once", record_dir=str(tmp_path)
    )
    units[3] = dataclasses.replace(
        units[3], kind="chaos_sleepy", record_dir=str(tmp_path)
    )
    return units, plain


class TestChaosSurvival:
    def test_sweep_survives_murder_and_hangs_then_resumes_bit_identical(
        self, tmp_path
    ):
        units, plain = _chaos_units(tmp_path)
        journal = str(tmp_path / "run.jsonl")
        (tmp_path / "slow-mode").touch()  # the sleeper hangs for now

        chaos = run_units(
            units,
            RunnerConfig(
                workers=2,
                timeout_s=1.0,
                retries=1,
                backoff_s=0.01,
                journal_path=journal,
            ),
        )

        # the sweep completed: murdered unit recovered on retry, sleeper
        # timed out on every attempt and is the only failure
        assert chaos.counters.units_ok == 4
        assert chaos.counters.units_failed == 1
        assert chaos.counters.units_retried >= 1
        assert chaos.counters.units_timeout == 1
        # two timeout kills + at least one SIGKILL'd worker replaced
        assert chaos.counters.worker_deaths >= 3
        assert len(chaos.records) == 4

        failure = chaos.failures[0]
        assert failure.kind == "chaos_sleepy"
        assert failure.transient and failure.attempts == 2
        assert len(failure.history) == 2
        assert all("timed out" in line for line in failure.history)

        # the journal carries the retry history and resume keys
        lines = [json.loads(l) for l in Path(journal).read_text().splitlines()]
        failed = [l for l in lines if l["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["attempts"] == 2
        assert len(failed[0]["retry_history"]) == 2
        assert all("key" in l for l in lines)

        # resume: the hang is cured; only the failed unit may recompute
        (tmp_path / "slow-mode").unlink()
        resumed = run_units(
            units,
            RunnerConfig(journal_path=journal, resume=journal),
        )
        assert resumed.counters.units_resumed == 4
        assert resumed.counters.units_ok == 1
        assert resumed.counters.units_failed == 0

        # ...and the result is bit-identical to an undisturbed sequential
        # run of the same logical units (every chaos kind computes spmv)
        undisturbed = run_units(plain)
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in undisturbed.records
        ]

    def test_worker_death_without_retries_is_a_transient_failure(
        self, tmp_path
    ):
        units, _ = _chaos_units(tmp_path)
        killer = units[1]
        result = run_units([killer], RunnerConfig(workers=2, retries=0))
        assert result.records == []
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.transient and not failure.attempts > 1
        assert "lost its worker" in failure.error
        assert result.counters.worker_deaths >= 1

    def test_timeout_failure_reports_wallclock_and_worker(self, tmp_path):
        units, _ = _chaos_units(tmp_path)
        sleeper = units[3]
        (tmp_path / "slow-mode").touch()
        start = time.monotonic()
        result = run_units(
            [sleeper],
            RunnerConfig(workers=1, timeout_s=0.5, retries=0),
        )
        elapsed = time.monotonic() - start
        assert elapsed < 20  # the 30s sleep was cut short
        assert result.counters.units_timeout == 1
        failure = result.failures[0]
        assert failure.transient
        assert "timed out" in failure.error
        assert "0.5s wall-clock" in failure.history[0]

    def test_parallel_chaos_keeps_healthy_records_ordered(self, tmp_path):
        units, plain = _chaos_units(tmp_path)
        (tmp_path / "slow-mode").touch()
        chaos = run_units(
            units,
            RunnerConfig(workers=3, timeout_s=1.0, retries=1, backoff_s=0.01),
        )
        healthy = run_units([plain[i] for i in (0, 1, 2, 4)])
        assert [r.to_dict() for r in chaos.records] == [
            r.to_dict() for r in healthy.records
        ]


class TestInterrupt:
    def test_sigint_flushes_completed_units_and_carries_partial_result(
        self, tmp_path
    ):
        coll = small_collection(4, seed=33, max_n=128)
        units = spmv_units(coll, formats=("csr",))
        journal = str(tmp_path / "int.jsonl")
        fired = []

        def interrupt_after_first(name):
            if not fired:
                fired.append(name)
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(SweepInterrupted) as excinfo:
            run_units(
                units,
                RunnerConfig(journal_path=journal),
                progress=interrupt_after_first,
            )
        exc = excinfo.value
        assert exc.signum == signal.SIGINT
        partial = exc.result
        assert 1 <= len(partial.records) < len(units)
        assert partial.counters.units_ok == len(partial.records)

        # every completed unit is already durable in the journal
        lines = [json.loads(l) for l in Path(journal).read_text().splitlines()]
        assert len(lines) == len(partial.records)
        assert all(l["status"] == "ok" and "record" in l for l in lines)

        # and the journal resumes: nothing completed is recomputed
        resumed = run_units(
            units, RunnerConfig(journal_path=journal, resume=journal)
        )
        assert resumed.counters.units_resumed == len(partial.records)
        assert resumed.counters.units_ok == len(units) - len(partial.records)
        undisturbed = run_units(units)
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in undisturbed.records
        ]

    def test_sigint_handlers_are_restored(self):
        coll = small_collection(1, seed=35, max_n=96)
        before = signal.getsignal(signal.SIGINT)
        run_units(spmv_units(coll, formats=("csr",)), RunnerConfig())
        assert signal.getsignal(signal.SIGINT) is before


class TestSupervisedEquivalence:
    def test_single_worker_supervised_matches_inline(self):
        """workers=1 with a timeout still routes through the supervisor
        and must stay bit-identical to the plain inline path."""
        coll = small_collection(3, seed=37, max_n=128)
        units = spmv_units(coll, formats=("csr", "csb"))
        inline = run_units(units)
        supervised = run_units(units, RunnerConfig(workers=1, timeout_s=60))
        assert supervised.counters.worker_deaths == 0
        assert [r.to_dict() for r in supervised.records] == [
            r.to_dict() for r in inline.records
        ]

    def test_fork_context_available(self):
        # the chaos suite assumes fork; make the assumption explicit
        assert multiprocessing.get_context("fork") is not None
