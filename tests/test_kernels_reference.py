"""Tests for the golden reference kernels (cross-checked against scipy)."""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro.errors import ShapeError
from repro.formats import COOMatrix, CSRMatrix
from repro.kernels import reference
from repro.matrices import random_uniform


def scipy_of(coo):
    return scipy_sparse.coo_matrix(
        (coo.data, (coo.row, coo.col)), shape=coo.shape
    ).tocsr()


class TestSpmvReference:
    def test_matches_scipy(self):
        coo = random_uniform(120, 0.05, 1)
        x = np.random.default_rng(0).standard_normal(120)
        np.testing.assert_allclose(
            reference.spmv(coo, x), scipy_of(coo) @ x, rtol=1e-10
        )


class TestSpmaReference:
    def test_matches_scipy(self):
        a = random_uniform(90, 0.05, 2)
        b = random_uniform(90, 0.05, 3)
        got = reference.spma(a, b)
        want = (scipy_of(a) + scipy_of(b)).toarray()
        np.testing.assert_allclose(got.to_dense(), want, rtol=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            reference.spma(random_uniform(4, 0.5, 0), random_uniform(5, 0.5, 0))

    def test_cancellation_keeps_explicit_entries(self):
        a = COOMatrix((2, 2), [0], [0], [1.0])
        b = COOMatrix((2, 2), [0], [0], [-1.0])
        c = reference.spma(a, b)
        assert c.to_dense()[0, 0] == 0.0


class TestSpmmReference:
    def test_matches_scipy(self):
        a = random_uniform(60, 0.08, 4)
        b = random_uniform(60, 0.08, 5)
        got = reference.spmm(a, b)
        want = (scipy_of(a) @ scipy_of(b)).toarray()
        np.testing.assert_allclose(got.to_dense(), want, rtol=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            reference.spmm(random_uniform(4, 0.5, 0), random_uniform(5, 0.5, 0))


class TestHistogramReference:
    def test_counts(self):
        keys = [0, 1, 1, 3, 3, 3]
        np.testing.assert_array_equal(
            reference.histogram(keys, 5), [1, 2, 0, 3, 0]
        )

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            reference.histogram([5], 5)
        with pytest.raises(ShapeError):
            reference.histogram([-1], 5)


class TestGaussianReference:
    def test_matches_scipy_correlate(self):
        from scipy.signal import correlate2d

        rng = np.random.default_rng(6)
        img = rng.standard_normal((20, 17))
        k = reference.gaussian_kernel_4x4()
        got = reference.gaussian_filter(img, k)
        want = correlate2d(img, k, mode="valid")
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_kernel_is_normalized(self):
        assert reference.gaussian_kernel_4x4().sum() == pytest.approx(1.0)

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            reference.gaussian_filter(np.zeros((3, 3)), np.ones((4, 4)))

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            reference.gaussian_filter(np.zeros(9), np.ones((2, 2)))
