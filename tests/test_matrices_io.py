"""Tests for MatrixMarket I/O (the real SuiteSparse on-ramp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRMatrix
from repro.matrices import random_uniform
from repro.matrices.io import (
    read_matrix_market,
    reads_matrix_market,
    write_matrix_market,
    writes_matrix_market,
)


class TestRead:
    def test_general_real(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 4 2\n"
            "1 1 1.5\n"
            "3 4 -2.0\n"
        )
        coo = reads_matrix_market(text)
        assert coo.shape == (3, 4)
        assert coo.to_dense()[0, 0] == 1.5
        assert coo.to_dense()[2, 3] == -2.0

    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
        coo = reads_matrix_market(text)
        np.testing.assert_array_equal(coo.to_dense(), [[0, 1], [1, 0]])

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
        assert reads_matrix_market(text).to_dense()[0, 0] == 7.0

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n1 1 5.0\n2 1 1.0\n3 2 2.0\n"
        )
        dense = reads_matrix_market(text).to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0

    def test_skew_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        dense = reads_matrix_market(text).to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_skew_rejects_diagonal(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n1 1 3.0\n"
        )
        with pytest.raises(FormatError):
            reads_matrix_market(text)

    def test_blank_and_comment_lines_between_entries(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n\n% interleaved\n1 1 1.0\n\n2 2 2.0\n"
        )
        assert reads_matrix_market(text).nnz == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "not a header\n1 1 1\n1 1 1.0\n",
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\nbogus\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
            "%%MatrixMarket matrix coordinate real general\n",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(FormatError):
            reads_matrix_market(bad)


class TestWrite:
    def test_roundtrip_string(self):
        coo = random_uniform(40, 0.05, 9)
        text = writes_matrix_market(coo, comment="generated")
        again = reads_matrix_market(text)
        np.testing.assert_allclose(again.to_dense(), coo.to_dense())

    def test_roundtrip_file(self, tmp_path):
        coo = random_uniform(25, 0.08, 10)
        path = tmp_path / "m.mtx"
        write_matrix_market(coo, path)
        again = read_matrix_market(path)
        np.testing.assert_allclose(again.to_dense(), coo.to_dense())

    def test_writes_any_format(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        text = writes_matrix_market(csr)
        assert reads_matrix_market(text).nnz == 3

    def test_values_survive_exactly(self):
        coo = COOMatrix((1, 1), [0], [0], [1.0 / 3.0])
        again = reads_matrix_market(writes_matrix_market(coo))
        assert again.data[0] == coo.data[0]  # repr round-trip is exact


@given(
    st.integers(1, 12),
    st.lists(
        st.tuples(
            st.integers(0, 11),
            st.integers(0, 11),
            st.floats(-1e3, 1e3, allow_nan=False).filter(lambda v: v != 0),
        ),
        max_size=30,
    ),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(dim, entries):
    entries = [(r % dim, c % dim, v) for r, c, v in entries]
    coo = COOMatrix(
        (dim, dim),
        [e[0] for e in entries],
        [e[1] for e in entries],
        [e[2] for e in entries],
    )
    again = reads_matrix_market(writes_matrix_market(coo))
    np.testing.assert_allclose(again.to_dense(), coo.to_dense())
