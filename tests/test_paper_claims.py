"""End-to-end assertions of the paper's headline claims at test scale.

The benchmark suite regenerates the full artifacts; this module pins the
*qualitative* claims into the fast test suite so a regression that flips a
winner is caught by ``pytest tests/`` alone.  Scales are small (seconds,
not minutes) and thresholds deliberately loose — shape, not magnitude.
"""

import numpy as np
import pytest

from repro.formats import CSBMatrix, CSCMatrix, CSRMatrix
from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    spma_csr_baseline,
    spma_via,
    spmm_csr_baseline,
    spmm_via,
    spmv_csb_baseline,
    spmv_csb_via,
    stencil_vector_baseline,
    stencil_via,
)
from repro.matrices import blocked, random_uniform
from repro.via import VIA_16_2P, area_mm2, leakage_mw


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2021)


class TestHeadlineClaims:
    """Abstract: 4.22x SpMV, 6.14x SpMA, 6.00x SpMM, 4.51x hist, 3.39x stencil."""

    def test_spmv_csb_wins_by_multiples(self, rng):
        coo = blocked(700, 16, 0.04, 0.5, 1)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        x = rng.standard_normal(700)
        speedup = spmv_csb_baseline(csb, x).cycles / spmv_csb_via(csb, x).cycles
        assert speedup > 2.5

    def test_spma_wins_by_multiples(self):
        a = CSRMatrix.from_coo(random_uniform(300, 0.02, 2))
        b = CSRMatrix.from_coo(random_uniform(300, 0.02, 3))
        assert spma_csr_baseline(a, b).cycles / spma_via(a, b).cycles > 2.5

    def test_spmm_wins_by_multiples(self):
        a = CSRMatrix.from_coo(random_uniform(200, 0.03, 4))
        b = CSCMatrix.from_coo(random_uniform(200, 0.03, 5))
        assert spmm_csr_baseline(a, b).cycles / spmm_via(a, b).cycles > 3.0

    def test_histogram_wins_and_scalar_is_slowest(self, rng):
        keys = rng.integers(0, 512, size=6000)
        s = histogram_scalar_baseline(keys, 512).cycles
        v = histogram_vector_baseline(keys, 512).cycles
        via = histogram_via(keys, 512).cycles
        assert s / via > 3.0 and v / via > 3.0
        assert s > v  # the paper's ordering (5.49x > 4.51x)

    def test_stencil_wins_in_band(self, rng):
        image = rng.standard_normal((40, 40))
        ratio = stencil_vector_baseline(image).cycles / stencil_via(image).cycles
        assert 2.0 < ratio < 6.0  # paper 3.39x

    def test_energy_reduction_for_csb_spmv(self, rng):
        coo = blocked(700, 16, 0.04, 0.5, 6)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        x = rng.standard_normal(700)
        base = spmv_csb_baseline(csb, x)
        via = spmv_csb_via(csb, x)
        assert base.energy_pj / via.energy_pj > 1.5  # paper 3.8x

    def test_area_headline(self):
        # "area- and power-efficient (0.515 mm^2 and 0.5 mW)" — abstract
        assert area_mm2(VIA_16_2P) == pytest.approx(0.515)
        assert leakage_mw(VIA_16_2P) == pytest.approx(0.50)


class TestMechanismClaims:
    """Section III: the two challenges VIA removes."""

    def test_challenge1_gathers_eliminated_for_csb(self, rng):
        coo = blocked(400, 16, 0.05, 0.5, 7)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        x = rng.standard_normal(400)
        assert spmv_csb_baseline(csb, x).counters.gathers > 0
        assert spmv_csb_via(csb, x).counters.gathers == 0

    def test_challenge2_branches_eliminated_for_spma(self):
        a = CSRMatrix.from_coo(random_uniform(150, 0.03, 8))
        b = CSRMatrix.from_coo(random_uniform(150, 0.03, 9))
        assert spma_csr_baseline(a, b).counters.branch_mispredicts > 0
        via = spma_via(a, b)
        assert via.counters.branch_mispredicts == 0
        assert via.counters.cam_searches > 0

    def test_memory_bound_kernels_free_bandwidth(self, rng):
        # Section III-B: VIA releases bandwidth to stream the sparse matrix
        coo = blocked(700, 16, 0.04, 0.5, 10)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        x = rng.standard_normal(700)
        base = spmv_csb_baseline(csb, x)
        via = spmv_csb_via(csb, x)
        assert via.memory_bandwidth_gbs > base.memory_bandwidth_gbs
