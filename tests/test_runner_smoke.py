"""Fast tier-1 smoke path through the parallel cached sweep runner.

This is the acceptance demo in miniature: a seeded sweep run twice must
show cache hits on the second run and records identical to a sequential
run, with the JSONL journal carrying per-unit timing and cache status for
every work unit.  It also exercises the ``python -m repro.eval``
CLI end to end.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval import RunnerConfig, run_units, spmv_units, sweep_spmv
from repro.sim import SweepCounters
from repro.matrices import small_collection

pytestmark = pytest.mark.smoke

SRC = Path(__file__).parent.parent / "src"


@pytest.fixture(scope="module")
def demo_collection():
    return small_collection(4, seed=2021, max_n=160)


def test_demo_sweep_twice_hits_cache_and_matches_sequential(
    demo_collection, tmp_path
):
    units = spmv_units(demo_collection, formats=("csr", "csb"))
    config = RunnerConfig(
        workers=2,
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "journal.jsonl"),
    )

    cold = run_units(units, config)
    warm = run_units(units, config)
    sequential = sweep_spmv(demo_collection, formats=("csr", "csb"))

    # cache behavior: all misses cold, all hits warm
    assert cold.counters.cache_misses == len(units)
    assert warm.counters.cache_hits == len(units)
    assert warm.counters.units_ok == 0

    # identical records to the sequential path, both runs
    assert cold.records == sequential
    assert warm.records == sequential

    # the journal records timing + cache status for every work unit
    lines = [
        json.loads(l)
        for l in Path(config.journal_path).read_text().splitlines()
    ]
    assert len(lines) == 2 * len(units)
    for line in lines:
        assert line["kind"] == "spmv"
        assert line["wall_s"] >= 0
        assert line["cache"] in ("hit", "miss")
        assert line["status"] in ("ok", "cached")
        assert isinstance(line["worker"], int)
        assert "via_cycles" in line and "baseline_cycles" in line
    assert all(l["cache"] == "miss" for l in lines[: len(units)])
    assert all(l["cache"] == "hit" for l in lines[len(units):])


def test_progress_callback_fires_for_cached_units(demo_collection, tmp_path):
    units = spmv_units(demo_collection, formats=("csr",))
    config = RunnerConfig(cache_dir=str(tmp_path / "c"))
    run_units(units, config)
    seen = []
    run_units(units, config, progress=seen.append)
    assert seen == [u.spec.name for u in units]


def test_explicit_chunksize_preserves_order(demo_collection):
    units = spmv_units(demo_collection, formats=("csr",))
    a = run_units(units, RunnerConfig(workers=2, chunksize=1))
    b = run_units(units, RunnerConfig(workers=2, chunksize=4))
    assert a.records == b.records
    assert [r.name for r in a.records] == [u.spec.name for u in units]


def test_sweep_counters_merge_and_summary():
    a = SweepCounters(units_total=3, units_ok=2, units_failed=1,
                      cache_misses=3, wall_seconds=1.5, workers=2)
    b = SweepCounters(units_total=2, units_cached=2, cache_hits=2,
                      wall_seconds=0.5, workers=4)
    merged = a.merge(b)
    assert merged.units_total == 5
    assert merged.units_ok == 2 and merged.units_cached == 2
    assert merged.cache_hits == 2 and merged.cache_misses == 3
    assert merged.wall_seconds == pytest.approx(2.0)
    assert merged.workers == 4
    text = merged.summary()
    assert "5 units" in text and "2 cached" in text and "1 failed" in text
    assert set(a.as_dict()) == {f for f in SweepCounters.__dataclass_fields__}


def test_cli_demo_sweep_reports_cache_hits(tmp_path):
    """The documented two-run demo: second invocation is served hot."""
    cmd = [
        sys.executable, "-m", "repro.eval",
        "--kernel", "spmv", "--count", "2", "--max-n", "128",
        "--cache-dir", str(tmp_path / "cache"),
        "--journal", str(tmp_path / "run.jsonl"),
    ]
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    first = subprocess.run(cmd, capture_output=True, text=True, env=env,
                           timeout=300)
    assert first.returncode == 0, first.stderr[-2000:]
    assert "2 computed, 0 cached" in first.stdout
    assert "geomean speedup" in first.stdout

    second = subprocess.run(cmd, capture_output=True, text=True, env=env,
                            timeout=300)
    assert second.returncode == 0, second.stderr[-2000:]
    assert "0 computed, 2 cached" in second.stdout
    assert "cache 2 hit / 0 miss" in second.stdout

    lines = (tmp_path / "run.jsonl").read_text().splitlines()
    assert len(lines) == 4  # two runs x two units

    third = subprocess.run(
        cmd + ["--invalidate-cache", "--no-cache"],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert third.returncode == 0, third.stderr[-2000:]
    assert "invalidated 2" in third.stdout
    assert "2 computed" in third.stdout
