"""Tests for the VIA configuration geometry (Table I VIA rows)."""

import pytest

from repro.errors import ConfigError
from repro.via import (
    DEFAULT_VIA,
    VIA_4_2P,
    VIA_8_4P,
    VIA_16_2P,
    VIA_16_4P,
    ViaConfig,
    all_configs,
    dse_configs,
)
from repro.via.config import CAM_BANK_ENTRIES


class TestGeometry:
    def test_entries_are_four_byte_blocks(self):
        # Section IV-A: the SRAM is built from four-byte blocks
        assert VIA_16_2P.sram_entries == 16 * 1024 // 4
        assert VIA_4_2P.sram_entries == 4 * 1024 // 4

    def test_cam_is_quarter_of_sram(self):
        # the published "8 KB, CAM:2KB" data point fixes the ratio
        assert VIA_8_4P.cam_kb == 2
        assert VIA_16_2P.cam_kb == 4
        assert VIA_4_2P.cam_kb == 1

    def test_cam_banks_of_eight(self):
        assert CAM_BANK_ENTRIES == 8
        assert VIA_16_2P.cam_banks == VIA_16_2P.cam_entries // 8

    def test_csb_block_size_is_half_capacity(self):
        # Section V-B: CSB blocks tuned to half the SSPM storage
        for cfg in all_configs():
            assert cfg.csb_block_size == cfg.sram_entries // 2

    def test_names_match_paper_convention(self):
        assert {c.name for c in all_configs()} == {
            "4_2p", "4_4p", "8_2p", "8_4p", "16_2p", "16_4p",
        }

    def test_default_is_the_selected_sweet_spot(self):
        # Section VI-B: 16 KB / 2 ports is the chosen configuration
        assert DEFAULT_VIA == VIA_16_2P

    def test_dse_set_matches_figure9(self):
        assert {c.name for c in dse_configs()} == {
            "4_2p", "4_4p", "16_2p", "16_4p",
        }
        assert VIA_16_4P in dse_configs()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            ViaConfig(0, 2)
        with pytest.raises(ConfigError):
            ViaConfig(16, 0)

    def test_configs_are_hashable_value_objects(self):
        assert ViaConfig(16, 2) == VIA_16_2P
        assert len({ViaConfig(16, 2), VIA_16_2P, VIA_4_2P}) == 2
