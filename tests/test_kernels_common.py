"""Tests for the shared kernel plumbing and result bookkeeping."""

import numpy as np
import pytest

from repro.kernels.common import (
    chunk_instr_count,
    make_core,
    make_via_core,
    row_fragmented_elements,
)
from repro.sim import Core, MachineConfig
from repro.via import VIA_4_2P, ViaDevice


class TestChunkInstrCount:
    def test_empty(self):
        assert chunk_instr_count(np.array([], dtype=int), 4) == 0

    def test_exact_multiples(self):
        assert chunk_instr_count(np.array([4, 8]), 4) == 3

    def test_fragmentation(self):
        # short runs each need a whole instruction
        assert chunk_instr_count(np.array([1, 1, 1, 1]), 4) == 4

    def test_mixed(self):
        assert chunk_instr_count(np.array([5, 3, 0]), 4) == 3

    def test_zero_length_runs_cost_nothing(self):
        assert chunk_instr_count(np.zeros(10, dtype=int), 4) == 0

    def test_fragmented_elements(self):
        assert row_fragmented_elements(np.array([1, 5]), 4) == 12


class TestCoreFactories:
    def test_make_core_defaults(self):
        core = make_core()
        assert isinstance(core, Core)
        assert core.via is None
        assert core.machine.vl == 4

    def test_make_core_custom_machine(self):
        core = make_core(MachineConfig().with_lanes(8))
        assert core.machine.vl == 8

    def test_make_via_core_attaches_device(self):
        core, dev = make_via_core(via_config=VIA_4_2P)
        assert isinstance(dev, ViaDevice)
        assert core.via is dev
        assert dev.config is VIA_4_2P
        # the device sees the machine's VL through the attachment
        assert dev.vl == core.machine.vl

    def test_fresh_cores_have_independent_caches(self):
        core_a = make_core()
        x = core_a.alloc("x", 1000)
        core_a.load_stream(x, 0, 1000)
        core_b = make_core()
        assert core_b.memory.l1.stats.accesses == 0

    def test_each_call_returns_new_device(self):
        _core1, dev1 = make_via_core()
        _core2, dev2 = make_via_core()
        assert dev1 is not dev2
        dev1.vidxload([1.0], [0])
        assert dev2.sspm.element_count == 0
        assert dev2.sspm.dm_read([0])[0] == 0.0


class TestBulkVsFunctionalConsistency:
    """The bulk FIVU accounting must price identically to functional runs."""

    def test_vidxload_bulk_matches_functional(self):
        from repro.via import Mode, Opcode

        core_f, dev_f = make_via_core()
        dev_f.vidxload(np.ones(64), np.arange(64))
        core_b, dev_b = make_via_core()
        dev_b.account_bulk(Opcode.VIDXLOAD, 64, mode=Mode.DIRECT)
        assert core_b.counters.sspm_busy_cycles == pytest.approx(
            core_f.counters.sspm_busy_cycles
        )
        assert core_b.counters.via_instructions == core_f.counters.via_instructions

    def test_vidxadd_sspm_bulk_matches_functional(self):
        from repro.via import Dest, Opcode

        core_f, dev_f = make_via_core()
        dev_f.vidxadd(np.ones(32), np.arange(32), dest=Dest.SSPM)
        core_b, dev_b = make_via_core()
        dev_b.account_bulk(Opcode.VIDXADD, 32, dest=Dest.SSPM)
        assert core_b.counters.sspm_busy_cycles == pytest.approx(
            core_f.counters.sspm_busy_cycles
        )

    def test_bulk_rejects_scalar_opcodes(self):
        from repro.errors import ISAError
        from repro.via import Opcode

        _core, dev = make_via_core()
        with pytest.raises(ISAError):
            dev.account_bulk(Opcode.VIDXCOUNT, 4)

    def test_bulk_zero_elements_is_noop(self):
        from repro.via import Opcode

        core, dev = make_via_core()
        dev.account_bulk(Opcode.VIDXLOAD, 0)
        assert core.counters.via_instructions == 0
