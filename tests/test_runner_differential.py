"""Differential tests: the parallel+cached runner vs the sequential path.

The whole value of :mod:`repro.eval.runner` rests on one invariant — no
execution strategy may change the science.  For a seeded matrix sample,
every combination of (cold cache, warm cache, workers=1, workers=N) must
produce **bit-identical** :class:`SweepRecord` lists: identical floats,
identical ordering, identical per-format keys.

Runner-exercised sweeps here run with ``validate=True`` (the op-stream
runtime invariant checks) against a non-validated sequential reference, so
the suite also proves the :class:`~repro.sim.backends.InvariantBackend`
passes clean and never perturbs a single bit.
"""

import numpy as np
import pytest

from repro.eval import (
    RunnerConfig,
    run_units,
    spma_units,
    spmm_units,
    spmv_units,
    sweep_spma,
    sweep_spmv,
)
from repro.matrices import MatrixCollection, small_collection

pytestmark = pytest.mark.smoke


@pytest.fixture(scope="module")
def collection():
    return small_collection(5, seed=7, max_n=192)


@pytest.fixture(scope="module")
def spmv_sequential(collection):
    """The reference: strict inline execution, no pool, no cache."""
    return sweep_spmv(collection, formats=("csr", "csb"))


def _assert_bit_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g == w, f"record for {w.name} differs"
        # dataclass equality is ==; re-check floats are *bitwise* equal
        for fld in ("speedup", "baseline_cycles", "via_cycles",
                    "energy_ratio", "bandwidth_ratio"):
            gd, wd = getattr(g, fld), getattr(w, fld)
            assert list(gd) == list(wd)
            for key in wd:
                assert np.float64(gd[key]).tobytes() == \
                    np.float64(wd[key]).tobytes(), (w.name, fld, key)


class TestSpmvDifferential:
    def test_workers1_no_cache_matches_sequential(
        self, collection, spmv_sequential
    ):
        records = sweep_spmv(
            collection, formats=("csr", "csb"),
            runner=RunnerConfig(workers=1), validate=True,
        )
        _assert_bit_identical(records, spmv_sequential)

    def test_parallel_matches_sequential(self, collection, spmv_sequential):
        records = sweep_spmv(
            collection, formats=("csr", "csb"),
            runner=RunnerConfig(workers=3), validate=True,
        )
        _assert_bit_identical(records, spmv_sequential)

    def test_cold_then_warm_cache_matches_sequential(
        self, collection, spmv_sequential, tmp_path
    ):
        units = spmv_units(collection, formats=("csr", "csb"), validate=True)
        cold = run_units(
            units, RunnerConfig(workers=2, cache_dir=str(tmp_path / "c"))
        )
        assert cold.counters.cache_hits == 0
        assert cold.counters.cache_misses == len(units)
        _assert_bit_identical(cold.records, spmv_sequential)

        warm = run_units(
            units, RunnerConfig(workers=2, cache_dir=str(tmp_path / "c"))
        )
        assert warm.counters.cache_hits == len(units)
        assert warm.counters.units_ok == 0
        _assert_bit_identical(warm.records, spmv_sequential)

    def test_no_cache_escape_hatch_recomputes(self, collection, tmp_path):
        units = spmv_units(collection, formats=("csr",), limit=2)
        cache_dir = str(tmp_path / "c")
        run_units(units, RunnerConfig(cache_dir=cache_dir))
        bypass = run_units(
            units, RunnerConfig(cache_dir=cache_dir, use_cache=False)
        )
        assert bypass.counters.cache_hits == 0
        assert bypass.counters.units_ok == len(units)


class TestSpmaSpmmDifferential:
    def test_spma_parallel_and_cached_match_sequential(
        self, collection, tmp_path
    ):
        sequential = sweep_spma(collection)
        units = spma_units(collection, validate=True)
        config = RunnerConfig(workers=2, cache_dir=str(tmp_path / "c"))
        _assert_bit_identical(run_units(units, config).records, sequential)
        _assert_bit_identical(run_units(units, config).records, sequential)

    def test_spmm_skips_are_order_stable(self, tmp_path):
        coll = MatrixCollection(6, seed=11, min_n=64, max_n=512)
        units = spmm_units(coll, max_n=256)
        sequential = run_units(units)
        parallel = run_units(units, RunnerConfig(workers=3))
        cached = run_units(
            units, RunnerConfig(workers=2, cache_dir=str(tmp_path / "c"))
        )
        warm = run_units(
            units, RunnerConfig(workers=2, cache_dir=str(tmp_path / "c"))
        )
        assert sequential.counters.units_skipped > 0  # the cut bites
        _assert_bit_identical(parallel.records, sequential.records)
        _assert_bit_identical(cached.records, sequential.records)
        _assert_bit_identical(warm.records, sequential.records)
        # skipped units are cached as skips too, not recomputed
        assert warm.counters.cache_hits == len(units)

    def test_limit_prefix_consistency(self, collection):
        """A limited sweep equals the prefix of the full sweep."""
        full = sweep_spma(collection)
        limited = sweep_spma(collection, limit=3)
        _assert_bit_identical(limited, full[:3])
