"""Property-based tests for the content-addressed sweep-result cache.

The cache key must be a *stable, total* function of everything that can
change a :class:`SweepRecord`: matrix spec, kernel kind and parameters,
:class:`MachineConfig`, :class:`ViaConfig`, and the code fingerprint.
Hypothesis drives the equality direction (equal inputs, equal keys across
reconstruction); the sensitivity direction walks every single config field
and asserts a perturbation moves the key.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.eval import ResultCache, RunnerConfig, WorkUnit, unit_cache_key
from repro.eval.harness import SweepRecord
from repro.matrices import MatrixSpec
from repro.sim.config import CacheConfig, MachineConfig
from repro.via.config import ViaConfig

pytestmark = pytest.mark.smoke

CODE = "test-code-version"


def _spec(**overrides) -> MatrixSpec:
    base = dict(name="m0", domain="random", n=256, seed=42,
                params={"density": 0.01})
    base.update(overrides)
    return MatrixSpec(**base)


def _unit(**overrides) -> WorkUnit:
    base = dict(kind="spmv", spec=_spec(), machine=MachineConfig(),
                via_config=ViaConfig(16, 2), formats=("csr", "csb"),
                max_n=None)
    base.update(overrides)
    return WorkUnit(**base)


# ----------------------------------------------------------------------
# equality: the key is a pure function of the unit's *values*


@given(
    n=st.integers(64, 4096),
    seed=st.integers(0, 2**31 - 1),
    domain=st.sampled_from(["random", "graph", "pde", "circuit"]),
    sram=st.sampled_from([4, 8, 16]),
    ports=st.sampled_from([2, 4]),
    lanes=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_equal_units_hash_equal(n, seed, domain, sram, ports, lanes):
    def make():
        return WorkUnit(
            kind="spmv",
            spec=MatrixSpec(f"{domain}_x", domain, n, seed,
                            {"density": 0.01}),
            machine=MachineConfig(vector_lanes=lanes),
            via_config=ViaConfig(sram, ports),
            formats=("csr", "csb"),
        )

    assert unit_cache_key(make(), CODE) == unit_cache_key(make(), CODE)


def test_key_is_hex_sha256():
    key = unit_cache_key(_unit(), CODE)
    assert len(key) == 64
    int(key, 16)  # valid hex


def test_key_independent_of_format_tuple_identity():
    a = _unit(formats=("csr", "csb"))
    b = _unit(formats=tuple(["csr", "csb"]))
    assert unit_cache_key(a, CODE) == unit_cache_key(b, CODE)


# ----------------------------------------------------------------------
# sensitivity: every single field perturbation must change the key


def _perturb_machine(machine: MachineConfig, field_name: str) -> MachineConfig:
    value = getattr(machine, field_name)
    if isinstance(value, CacheConfig):
        return dataclasses.replace(
            machine,
            **{field_name: dataclasses.replace(value, latency=value.latency + 1)},
        )
    if isinstance(value, bool):  # pragma: no cover - no bool fields today
        return dataclasses.replace(machine, **{field_name: not value})
    if isinstance(value, int):
        return dataclasses.replace(machine, **{field_name: value + 1})
    return dataclasses.replace(machine, **{field_name: value * 2.0})


@pytest.mark.parametrize(
    "field_name", [f.name for f in dataclasses.fields(MachineConfig)]
)
def test_any_machine_field_perturbation_changes_key(field_name):
    base = _unit()
    perturbed = _unit(machine=_perturb_machine(base.machine, field_name))
    assert unit_cache_key(base, CODE) != unit_cache_key(perturbed, CODE), (
        f"MachineConfig.{field_name} does not feed the cache key"
    )


@pytest.mark.parametrize(
    "field_name", [f.name for f in dataclasses.fields(ViaConfig)]
)
def test_any_via_field_perturbation_changes_key(field_name):
    base = _unit()
    value = getattr(base.via_config, field_name)
    perturbed = _unit(
        via_config=dataclasses.replace(base.via_config, **{field_name: value * 2})
    )
    assert unit_cache_key(base, CODE) != unit_cache_key(perturbed, CODE), (
        f"ViaConfig.{field_name} does not feed the cache key"
    )


@pytest.mark.parametrize(
    "field_name", [f.name for f in dataclasses.fields(CacheConfig)]
)
def test_nested_cache_level_fields_change_key(field_name):
    base = _unit()
    l2 = base.machine.l2
    if field_name == "latency":  # the only knob free of divisibility rules
        new = dataclasses.replace(l2, latency=l2.latency + 1)
    else:  # size/ways/line doubling keeps the geometry valid
        new = dataclasses.replace(l2, **{field_name: getattr(l2, field_name) * 2})
    perturbed = _unit(machine=dataclasses.replace(base.machine, l2=new))
    assert unit_cache_key(base, CODE) != unit_cache_key(perturbed, CODE)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda u: WorkUnit("spma", u.spec, u.machine, u.via_config, u.formats),
        lambda u: _unit(spec=_spec(name="other")),
        lambda u: _unit(spec=_spec(n=u.spec.n + 1)),
        lambda u: _unit(spec=_spec(seed=u.spec.seed + 1)),
        lambda u: _unit(spec=_spec(domain="graph")),
        lambda u: _unit(spec=_spec(params={"density": 0.02})),
        lambda u: _unit(formats=("csr",)),
        lambda u: _unit(formats=("csb", "csr")),  # order is meaningful
        lambda u: _unit(max_n=512),
    ],
    ids=["kind", "name", "n", "seed", "domain", "params", "formats",
         "format-order", "max_n"],
)
def test_unit_identity_fields_change_key(mutate):
    base = _unit()
    assert unit_cache_key(base, CODE) != unit_cache_key(mutate(base), CODE)


def test_code_version_changes_key():
    base = _unit()
    assert unit_cache_key(base, CODE) != unit_cache_key(base, CODE + "x")


# ----------------------------------------------------------------------
# store behavior


def test_cache_roundtrip_preserves_payload(tmp_path):
    cache = ResultCache(str(tmp_path))
    rec = SweepRecord("m", "random", 10, 20, 1.5,
                      speedup={"csb": 2.0, "csr": 1.1})
    key = unit_cache_key(_unit(), CODE)
    cache.put(key, rec.to_dict())
    payload, status = cache.get(key)
    assert status == "hit"
    assert SweepRecord.from_dict(payload) == rec
    assert len(cache) == 1


def test_cache_none_payload_roundtrip(tmp_path):
    """Skipped units (None records) are cached as explicit skips."""
    cache = ResultCache(str(tmp_path))
    cache.put("k" * 64, None)
    payload, status = cache.get("k" * 64)
    assert status == "hit"
    assert payload is None


def test_cache_miss_on_unknown_key(tmp_path):
    payload, status = ResultCache(str(tmp_path)).get("0" * 64)
    assert (payload, status) == (None, "miss")


def test_invalidate_single_and_all(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("a" * 64, {"name": "x"})
    cache.put("b" * 64, {"name": "y"})
    assert cache.invalidate("a" * 64) == 1
    assert cache.get("a" * 64)[1] == "miss"
    assert cache.get("b" * 64)[1] == "hit"
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_runner_config_validation():
    with pytest.raises(SweepError):
        RunnerConfig(workers=0)
    with pytest.raises(SweepError):
        RunnerConfig(chunksize=0)
    with pytest.raises(SweepError):
        RunnerConfig(timeout_s=0)
    with pytest.raises(SweepError):
        RunnerConfig(retries=-1)
    with pytest.raises(SweepError):
        RunnerConfig(backoff_s=-0.1)


def test_runner_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
    monkeypatch.setenv("REPRO_SWEEP_CACHE", "/tmp/somewhere")
    monkeypatch.setenv("REPRO_SWEEP_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_SWEEP_JOURNAL", "/tmp/j.jsonl")
    monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_SWEEP_RETRIES", "2")
    config = RunnerConfig.from_env()
    assert config.workers == 3
    assert config.cache_dir == "/tmp/somewhere"
    assert not config.use_cache
    assert not config.caching
    assert config.journal_path == "/tmp/j.jsonl"
    assert config.timeout_s == 12.5
    assert config.retries == 2
    assert config.supervised
    override = RunnerConfig.from_env(workers=1, use_cache=True)
    assert override.workers == 1 and override.caching


def test_runner_config_supervised_triggers():
    assert not RunnerConfig().supervised
    assert RunnerConfig(workers=2).supervised
    assert RunnerConfig(timeout_s=5).supervised
    assert RunnerConfig(retries=1).supervised
