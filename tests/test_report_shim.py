"""The ``repro.eval.report`` → ``report_cli`` deprecation shim contract.

The shim must (a) emit ``DeprecationWarning`` exactly once per fresh
import — not once per use, and not silently — and (b) re-export exactly
the CLI's public symbols, as the same objects, so old call sites behave
identically to the new module.
"""

import importlib
import subprocess
import sys
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SHIM = "repro.eval.report"


def _fresh_import():
    """Import the shim as if for the first time in this process."""
    sys.modules.pop(SHIM, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module(SHIM)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
        and "report_cli" in str(w.message)
    ]
    return module, deprecations


class TestDeprecationWarning:
    def test_fresh_import_warns_exactly_once(self):
        _, deprecations = _fresh_import()
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "repro.eval.report_cli" in message  # tells users where to go

    def test_reimport_of_cached_module_does_not_warn_again(self):
        _fresh_import()  # warm sys.modules
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module(SHIM)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_attribute_access_does_not_rewarn(self):
        module, _ = _fresh_import()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = module.build_report
            _ = module.main
        assert not caught


class TestReExports:
    def test_symbols_are_the_same_objects(self):
        module, _ = _fresh_import()
        cli = importlib.import_module("repro.eval.report_cli")
        for name in ("build_report", "dse_timing_report", "main"):
            assert getattr(module, name) is getattr(cli, name), name

    def test_no_extra_public_surface(self):
        module, _ = _fresh_import()
        public = {n for n in vars(module) if not n.startswith("_")}
        # the shim adds nothing beyond the re-exports and its own imports
        assert public <= {"build_report", "dse_timing_report", "main",
                          "sys", "warnings", "annotations"}

    def test_python_dash_m_entrypoint_still_resolves(self):
        # `python -m repro.eval.report --help` must keep working (and warn)
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", "import repro.eval.report"],
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0  # -W error surfaces the warning
        assert "DeprecationWarning" in proc.stderr
        assert "report_cli" in proc.stderr
