"""Chaos suite: the serving stack under deterministic fault injection.

Unit level: the :class:`~repro.serve.chaos.ChaosConfig` plan grammar and
its token-claim protocol (each rule fires exactly ``times`` times across
every worker process, bounded by ``O_CREAT | O_EXCL`` token files).

End-to-end level, against a real ``python -m repro.serve serve``
process booted with ``--chaos``:

* **mid-load murder** — workers crash, stall, and garble replies while
  32 concurrent clients drive mixed load: zero lost responses, every
  job terminal, and every result **bit-identical** to the same job on
  an undisturbed server;
* **hang** — a wedged worker is SIGKILLed by the per-job timeout and
  the slot respawns (the next job succeeds);
* **poison** — a job spec that reliably kills workers trips the
  circuit breaker (``poison_job``), later identical submissions fail
  fast, and the pool keeps serving other work.
"""

import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServeError
from repro.serve.chaos import ChaosConfig
from repro.serve.client import ServeClient
from tests.test_serve_e2e import _spawn_server, _stop


# ----------------------------------------------------------------------
# plan grammar + token protocol
# ----------------------------------------------------------------------
class TestChaosConfig:
    def test_parse_full_grammar(self):
        cfg = ChaosConfig.parse(
            "crash:kind=replay:times=2;hang:delay=60;slow_start:delay=1.5"
        )
        crash, hang, slow = cfg.rules
        assert (crash.fault, crash.kind, crash.times) == ("crash", "replay", 2)
        assert (hang.fault, hang.delay_s) == ("hang", 60.0)
        assert (slow.fault, slow.delay_s) == ("slow_start", 1.5)
        assert cfg.budget() == 4

    def test_parse_defaults(self):
        cfg = ChaosConfig.parse("hang;slow_start")
        assert cfg.rules[0].delay_s == 3600.0  # effectively forever
        assert cfg.rules[1].delay_s == 0.5
        assert all(r.times == 1 and r.kind == "*" for r in cfg.rules)

    @pytest.mark.parametrize(
        "spec",
        [
            "teleport",            # unknown fault
            "crash:times=zero",    # non-int budget
            "hang:delay=soon",     # non-float delay
            "crash:times=0",       # budget must be >= 1
            "crash:color=red",     # unknown field
            "crash:times",         # not key=value
            ";;",                  # no rules at all
        ],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ServeError) as info:
            ChaosConfig.parse(spec)
        assert info.value.code == "bad_chaos_spec"

    def test_from_env(self):
        assert ChaosConfig.from_env({}) is None
        cfg = ChaosConfig.from_env(
            {"REPRO_SERVE_CHAOS": "crash:times=3",
             "REPRO_SERVE_CHAOS_DIR": "/tmp/chaos-state"}
        )
        assert cfg.rules[0].times == 3
        assert cfg.state_dir == "/tmp/chaos-state"

    def test_claims_are_bounded_by_the_token_budget(self, tmp_path):
        cfg = ChaosConfig.parse("crash:times=2", str(tmp_path))
        assert cfg.job_fault("simulate") is not None
        assert cfg.job_fault("simulate") is not None
        assert cfg.job_fault("simulate") is None  # budget spent
        assert cfg.tokens_claimed() == 2
        # tokens persist: a "new worker process" (fresh object, same
        # directory) sees the plan already consumed
        again = ChaosConfig.parse("crash:times=2", str(tmp_path))
        assert again.job_fault("simulate") is None

    def test_kind_filter(self, tmp_path):
        cfg = ChaosConfig.parse("crash:kind=replay:times=5", str(tmp_path))
        assert cfg.job_fault("simulate") is None
        assert cfg.job_fault("replay") is not None

    def test_no_state_dir_fails_closed(self):
        cfg = ChaosConfig.parse("crash:times=5")
        assert cfg.state_dir is None
        assert cfg.job_fault("simulate") is None
        assert cfg.start_fault() is None

    def test_start_fault_only_claims_slow_start(self, tmp_path):
        cfg = ChaosConfig.parse(
            "crash:times=1;slow_start:times=1:delay=0.1", str(tmp_path)
        )
        rule = cfg.start_fault()
        assert rule is not None and rule.fault == "slow_start"
        assert cfg.start_fault() is None  # budget spent
        # the crash budget is untouched by bootstrap claims
        assert cfg.job_fault("simulate").fault == "crash"


# ----------------------------------------------------------------------
# end-to-end, against a real server under --chaos
# ----------------------------------------------------------------------
def _simulate_specs():
    """Eight distinct simulate specs — the shared chaos/baseline load."""
    return [
        {
            "kind": "simulate",
            "kernel": "spma",
            "count": 1,
            "max_n": 96,
            "seed": 100 + (i % 4),
            "ports": 1 + (i % 4),
        }
        for i in range(8)
    ]


class TestChaosEndToEnd:
    def test_mid_load_faults_zero_lost_bit_identical(self, tmp_path):
        """The headline chaos test: crash, stall, and garble workers
        while 32 clients drive load — nothing lost, nothing different."""
        specs = _simulate_specs()

        baseline_proc, baseline_addr = _spawn_server(tmp_path, name="calm")
        try:
            with ServeClient(**baseline_addr, timeout_s=120) as client:
                baseline = [
                    client.submit(spec, wait=True, wait_timeout_s=120)["result"]
                    for spec in specs
                ]
        finally:
            _stop(baseline_proc)

        chaos_proc, chaos_addr = _spawn_server(
            tmp_path,
            "--max-queue", "128",
            "--chaos", "crash:times=3;corrupt:times=2;hang:times=2:delay=2",
            name="chaos",
        )
        try:
            def one(i):
                spec = specs[i % len(specs)]
                with ServeClient(**chaos_addr, timeout_s=120) as client:
                    job = client.submit(spec)
                    done = client.result(job["job_id"], timeout_s=120)
                return i, done["state"], done.get("result")

            with ThreadPoolExecutor(max_workers=32) as pool:
                results = list(pool.map(one, range(32)))

            assert len(results) == 32  # zero lost responses
            for i, state, result in results:
                assert state == "done", (i, state)
                # bit-identical numbers vs the undisturbed server, fault
                # or not ("counters" is runtime bookkeeping — duplicate
                # specs hit the result cache here — so it is excluded)
                calm = baseline[i % len(specs)]
                assert result["records"] == calm["records"], i
                assert result["geomean_speedup"] == calm["geomean_speedup"], i

            with ServeClient(**chaos_addr) as client:
                snap = client.metrics()
            # the faults really fired: workers were replaced and their
            # jobs retried, yet nothing above noticed
            assert snap["pool_worker_restarts"] >= 3
            assert snap["pool_retries"] >= 3
            assert snap["pool_corrupt_replies"] >= 1
        finally:
            _stop(chaos_proc)

    def test_hung_worker_is_killed_and_slot_respawns(self, tmp_path):
        proc, addr = _spawn_server(
            tmp_path,
            "--workers", "1",
            "--chaos", "hang:kind=sleep:delay=60",
            name="hang",
        )
        try:
            with ServeClient(**addr, timeout_s=60) as client:
                wedged = client.submit(
                    {"kind": "sleep", "duration_s": 0.05, "timeout_s": 2.0},
                    wait=True, wait_timeout_s=60,
                )
                assert wedged["state"] == "failed"
                assert wedged["error"]["code"] == "timeout"

                # the killed slot respawned: the next job sails through
                ok = client.submit(
                    {"kind": "sleep", "duration_s": 0.05},
                    wait=True, wait_timeout_s=60,
                )
                assert ok["state"] == "done"
                snap = client.metrics()
                assert snap["pool_timeout_kills"] >= 1
        finally:
            _stop(proc)

    def test_poison_job_trips_the_breaker_and_pool_survives(self, tmp_path):
        proc, addr = _spawn_server(
            tmp_path,
            "--workers", "1",
            "--pool-retries", "5",
            "--poison-threshold", "2",
            "--chaos", "crash:kind=sleep:times=99",
            name="poison",
        )
        try:
            with ServeClient(**addr, timeout_s=60) as client:
                poison = client.submit(
                    {"kind": "sleep", "duration_s": 0.05},
                    wait=True, wait_timeout_s=60,
                )
                assert poison["state"] == "failed"
                assert poison["error"]["code"] == "poison_job"

                # identical spec: refused at submit time by the breaker
                again = client.submit(
                    {"kind": "sleep", "duration_s": 0.05},
                    wait=True, wait_timeout_s=60,
                )
                assert again["state"] == "failed"
                assert again["error"]["code"] == "poison_job"

                # the chaos rule filters on kind=sleep: other work is
                # untouched and the pool is still healthy
                ok = client.submit(
                    {"kind": "report"}, wait=True, wait_timeout_s=60
                )
                assert ok["state"] == "done"

                snap = client.metrics()
                assert snap["pool_poison_jobs"] >= 2
                stats = client.stats()
                assert stats["pool"]["quarantined_keys"]
        finally:
            _stop(proc)


def test_crash_exit_code_is_visible_in_chaos_module():
    # pinned so supervisor logs/health dumps stay greppable
    from repro.serve.chaos import CHAOS_CRASH_EXIT

    assert CHAOS_CRASH_EXIT == 23
    assert os.WEXITSTATUS(CHAOS_CRASH_EXIT << 8) == 23
