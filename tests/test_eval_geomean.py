"""Edge-case tests for :func:`repro.eval.geomean`.

The aggregate must distinguish two NaN cases that used to be
indistinguishable: *no data* (empty input — routine, silent) and *all
values filtered out* (every value non-positive or NaN — suspicious,
warned).  Partial drops warn with the count instead of vanishing silently.
"""

import warnings

import numpy as np
import pytest

from repro.eval import geomean

pytestmark = pytest.mark.smoke


def test_empty_input_is_silent_nan():
    """No data: NaN without a warning — empty categories are routine."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning would raise
        assert np.isnan(geomean([]))
        assert np.isnan(geomean(iter(())))


def test_all_filtered_out_warns_and_returns_nan():
    with pytest.warns(RuntimeWarning, match="all 3 value.*non-positive"):
        assert np.isnan(geomean([0.0, -1.0, -2.5]))


def test_all_nan_input_warns_and_returns_nan():
    with pytest.warns(RuntimeWarning, match="non-positive or NaN"):
        assert np.isnan(geomean([float("nan"), float("nan")]))


def test_partial_drop_warns_with_count_and_averages_the_rest():
    with pytest.warns(RuntimeWarning, match="dropped 2 non-positive.*out of 4"):
        assert geomean([4.0, 0.0, -1.0, 1.0]) == pytest.approx(2.0)


def test_clean_input_is_silent_and_correct():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_warn_label_names_the_aggregate():
    with pytest.warns(RuntimeWarning, match="csb speedups:"):
        geomean([-1.0], warn_label="csb speedups")
