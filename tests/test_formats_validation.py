"""Negative tests: malformed format arrays must raise FormatError."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import (
    COOMatrix,
    CSBMatrix,
    CSCMatrix,
    CSRMatrix,
    SPC5Matrix,
    SellCSigmaMatrix,
)


class TestCOOValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0, 1], [0], [1.0])

    def test_row_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [3], [0], [1.0])

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0], [3], [1.0])

    def test_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [-1], [0], [1.0])

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((3,), [0], [0], [1.0])
        with pytest.raises(ShapeError):
            COOMatrix((-1, 3), [], [], [])

    def test_non_integral_indices(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), [0.5], [0], [1.0])

    def test_dense_must_be_2d(self):
        with pytest.raises(FormatError):
            COOMatrix.from_dense(np.zeros(4))


class TestCSRValidation:
    def test_row_ptr_wrong_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_row_ptr_not_starting_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [1, 1, 1], [0], [1.0])

    def test_row_ptr_decreasing(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_row_ptr_nnz_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])

    def test_unsorted_columns_in_row(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [2, 1], [1.0, 2.0])

    def test_duplicate_columns_in_row(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [1, 1], [1.0, 2.0])

    def test_spmv_reference_shape_check(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(FormatError):
            csr.spmv_reference(np.zeros(4))


class TestCSCValidation:
    def test_col_ptr_wrong_length(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), [0, 1], [0], [1.0])

    def test_row_out_of_range(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), [0, 1, 1], [4], [1.0])

    def test_unsorted_rows_in_column(self):
        with pytest.raises(FormatError):
            CSCMatrix((4, 1), [0, 2], [2, 1], [1.0, 2.0])


class TestCSBValidation:
    def test_bad_block_size(self):
        with pytest.raises(FormatError):
            CSBMatrix.from_dense(np.eye(4), block_size=0)

    def test_empty_block_rejected(self):
        with pytest.raises(FormatError):
            CSBMatrix((4, 4), 2, [0, 0], [0], [0], [], [])

    def test_merged_index_out_of_range(self):
        with pytest.raises(FormatError):
            CSBMatrix((4, 4), 2, [0, 1], [0], [0], [100], [1.0])

    def test_block_coord_out_of_range(self):
        with pytest.raises(FormatError):
            CSBMatrix((4, 4), 2, [0, 1], [9], [0], [0], [1.0])


class TestSPC5Validation:
    def test_bad_vl(self):
        with pytest.raises(FormatError):
            SPC5Matrix.from_dense(np.eye(4), vl=0)
        with pytest.raises(FormatError):
            SPC5Matrix.from_dense(np.eye(4), vl=65)

    def test_zero_mask_rejected(self):
        with pytest.raises(FormatError):
            SPC5Matrix((2, 8), 8, [0], [0], [0], [0, 0], [])

    def test_mask_popcount_mismatch(self):
        with pytest.raises(FormatError):
            SPC5Matrix((2, 8), 8, [0], [0], [0b11], [0, 1], [1.0])


class TestSellCSValidation:
    def test_sigma_smaller_than_c(self):
        with pytest.raises(FormatError):
            SellCSigmaMatrix.from_dense(np.eye(4), c=8, sigma=4)

    def test_perm_must_be_permutation(self):
        with pytest.raises(FormatError):
            SellCSigmaMatrix(
                (2, 2), 2, 2, [0, 0], [0, 2], [1], [1, 1], [0, 0], [1.0, 1.0]
            )
