"""Integration tests: full pipelines across formats, kernels and harness."""

import numpy as np
import pytest

from repro.eval import (
    aggregate_ratio,
    categorize,
    geomean,
    render_categories,
    render_dse,
    render_table,
    run_dse,
    sweep_spma,
    sweep_spmm,
    sweep_spmv,
)
from repro.matrices import MatrixCollection, dse_collection, small_collection
from repro.via import VIA_16_2P, dse_configs


@pytest.fixture(scope="module")
def tiny_collection():
    return small_collection(6, seed=123, max_n=384)


class TestSpmvSweep:
    @pytest.fixture(scope="class")
    def records(self, tiny_collection):
        return sweep_spmv(tiny_collection)

    def test_one_record_per_matrix(self, records, tiny_collection):
        assert len(records) == len(tiny_collection)

    def test_all_formats_present(self, records):
        for rec in records:
            assert set(rec.speedup) == {"csr", "csb", "spc5", "sellcs"}
            assert all(v > 0 for v in rec.speedup.values())

    def test_metric_is_block_density(self, records):
        assert all(rec.metric >= 0 for rec in records)

    def test_categorize_produces_four_rows(self, records):
        cats = categorize(records)
        assert len(cats.rows) == 4
        assert set(cats.overall) == {"csr", "csb", "spc5", "sellcs"}

    def test_csb_dominates_on_average(self, records):
        cats = categorize(records)
        assert cats.overall["csb"] == max(cats.overall.values())

    def test_render_categories(self, records):
        text = render_categories(
            "Fig10", categorize(records), metric_label="nnz/block"
        )
        assert "average" in text and "csb speedup" in text

    def test_energy_and_bandwidth_ratios_finite(self, records):
        assert np.isfinite(aggregate_ratio(records, "energy_ratio", "csb"))
        assert np.isfinite(aggregate_ratio(records, "bandwidth_ratio", "csb"))

    def test_progress_callback_called(self, tiny_collection):
        seen = []
        sweep_spmv(
            tiny_collection, formats=("csr",), limit=2, progress=seen.append
        )
        assert len(seen) == 2


class TestSpmaSpmmSweeps:
    def test_spma_sweep_records(self, tiny_collection):
        records = sweep_spma(tiny_collection, limit=4)
        assert len(records) == 4
        assert all(r.speedup["csr"] > 1 for r in records)

    def test_spmm_sweep_respects_max_n(self, tiny_collection):
        records = sweep_spmm(tiny_collection, max_n=300)
        assert all(r.n <= 300 for r in records)

    def test_spmm_speedups_positive(self, tiny_collection):
        records = sweep_spmm(tiny_collection, limit=3, max_n=1024)
        assert records and all(r.speedup["csr"] > 1 for r in records)


class TestDse:
    @pytest.fixture(scope="class")
    def result(self):
        coll = MatrixCollection(2, seed=55, min_n=700, max_n=1400)
        spmm_coll = MatrixCollection(2, seed=56, min_n=192, max_n=320)
        return run_dse(coll, spmm_collection=spmm_coll)

    def test_all_kernels_and_configs_present(self, result):
        names = {c.name for c in dse_configs()}
        for kernel in ("spmv", "spma", "spmm"):
            assert set(result.cycles[kernel]) == names

    def test_normalization_baseline_is_one(self, result):
        for kernel in ("spmv", "spma", "spmm"):
            assert result.normalized_speedup(kernel)["4_2p"] == pytest.approx(1.0)

    def test_render_dse(self, result):
        text = render_dse(result)
        assert "Figure 9" in text and "16_4p" in text

    def test_dse_collection_specs(self):
        coll = dse_collection()
        assert len(coll) >= 6
        assert all(s.n >= 2048 for s in coll)


class TestGeomean:
    def test_geomean_of_constant(self):
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_below_arithmetic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_empty_is_nan(self):
        assert np.isnan(geomean([]))

    def test_geomean_ignores_nonpositive_with_warning(self):
        with pytest.warns(RuntimeWarning, match="dropped 2 non-positive"):
            assert geomean([2.0, 0.0, -1.0]) == pytest.approx(2.0)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table("Title", ["a", "bb"], [["1", "2"], ["33", "444"]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows


class TestResultInvariants:
    def test_cycles_equal_breakdown_total(self, tiny_collection):
        records = sweep_spmv(tiny_collection, formats=("csb",), limit=2)
        # rebuild one kernel run and check the invariant directly
        import numpy as np

        from repro.formats import CSBMatrix
        from repro.kernels import spmv_csb_via

        spec = tiny_collection.specs[0]
        coo = tiny_collection.matrix(spec)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        x = np.zeros(coo.cols)
        res = spmv_csb_via(csb, x)
        assert res.cycles == pytest.approx(res.breakdown.total_cycles)
        assert res.seconds == pytest.approx(
            res.cycles / (2.0 * 1e9)
        )
        assert records  # sweep produced data
