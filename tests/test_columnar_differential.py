"""Differential harness pinning the columnar engine to the scalar one.

The columnar pricing engine (:mod:`repro.sim.columnar`) promises
*bit-identical* results to the scalar replay path — not approximately
equal, identical down to the last float bit (DESIGN.md Section 9).  This
suite enforces that contract over the same matrix as
``test_ops_replay_differential.py``: every kernel family and SpMV format,
the four Fig. 9 DSE configurations, cross-machine (memory-pass) replays,
disk round-trips, the capacity-invariant SpMA/SpMM shared-baseline path,
and the end-to-end Fig. 9 DSE.  Each case compares three ways — direct
execution, scalar replay, and columnar replay — all under
``validate=True`` so the whole-array invariant checks ride along and must
never trip or perturb a bit.

Also pins the engine-selection surface itself: the default engine stays
scalar, unknown engines are rejected, fractional-latency machines fall
back to the scalar path *loudly* (:class:`EngineFallbackWarning` plus the
``engine_fallback`` counter), and the cross-machine memo keeps one entry
per (engine, machine).
"""

import dataclasses
import tempfile

import numpy as np
import pytest

from repro.errors import ReplayMismatchError, SimulationError
from repro.eval import RunnerConfig, run_units
from repro.eval.dse import run_dse
from repro.eval.units import record_units, replay_units, spma_units, spmm_units
from repro.formats.csb import CSBMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr5 import CSR5Matrix
from repro.formats.sellcs import SellCSigmaMatrix
from repro.formats.spc5 import SPC5Matrix
from repro.kernels.csr5_spmv import spmv_csr5_via
from repro.kernels.histogram import histogram_via
from repro.kernels.spma import spma_via
from repro.kernels.spmm import spmm_via
from repro.kernels.spmv import SPMV_VARIANTS
from repro.kernels.stencil import stencil_via
from repro.matrices.collection import small_collection
from repro.sim.backends import (
    DEFAULT_REPLAY_ENGINE,
    REPLAY_ENGINES,
    RecorderBackend,
    replay_recording,
)
from repro.sim.columnar import machine_latencies_integral
from repro.sim.config import DEFAULT_MACHINE
from repro.sim.ops import load_recordings, save_recordings
from repro.via.config import (
    VIA_4_2P,
    VIA_4_4P,
    VIA_16_2P,
    VIA_16_4P,
    dse_configs,
)

from tests.test_ops_replay_differential import _bits, assert_result_identical

pytestmark = [pytest.mark.smoke, pytest.mark.columnar]


@pytest.fixture(scope="module")
def coo():
    return small_collection(2, seed=11, max_n=160).specs[0].build()


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(3).standard_normal(coo.cols)


def _record(run):
    """Run a kernel callable with a recorder; return (result, recording)."""
    backend = RecorderBackend()
    result = run(backend)
    return result, backend.recording


def _replay_both(recording, **kwargs):
    """Replay with both engines under validation; assert they agree.

    Returns the columnar result for further comparison against direct
    execution — one call checks both halves of the contract.
    """
    scalar = replay_recording(
        recording, engine="scalar", validate=True, **kwargs
    )
    columnar = replay_recording(
        recording, engine="columnar", validate=True, **kwargs
    )
    assert_result_identical(columnar, scalar)
    return columnar


# ----------------------------------------------------------------------
# per-kernel-family identity, recorded at 2 ports and replayed at 4
# ----------------------------------------------------------------------
class TestKernelFamilies:
    REC, TGT = VIA_16_2P, VIA_16_4P

    def _check(self, make_run):
        _, recording = _record(make_run(self.REC))
        want = make_run(self.TGT)(None)
        got = _replay_both(recording, via_config=self.TGT)
        assert_result_identical(got, want)

    @pytest.mark.parametrize("fmt", sorted(SPMV_VARIANTS))
    def test_spmv_format(self, coo, x, fmt):
        def make_run(cfg):
            if fmt == "csr":
                mat = CSRMatrix.from_coo(coo)
            elif fmt == "csb":
                mat = CSBMatrix.from_coo(coo, block_size=cfg.csb_block_size)
            elif fmt == "spc5":
                mat = SPC5Matrix.from_coo(coo, vl=DEFAULT_MACHINE.vl)
            else:
                mat = SellCSigmaMatrix.from_coo(
                    coo, c=DEFAULT_MACHINE.vl, sigma=16 * DEFAULT_MACHINE.vl
                )
            _, via_fn = SPMV_VARIANTS[fmt]
            return lambda backend=None: via_fn(
                mat, x, DEFAULT_MACHINE, cfg, backend=backend
            )

        self._check(make_run)

    def test_spma(self, coo):
        a = CSRMatrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spma_via(
                a, a, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_spmm(self, coo):
        a = CSRMatrix.from_coo(coo)
        b = CSCMatrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spmm_via(
                a, b, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_histogram(self):
        keys = np.random.default_rng(5).integers(0, 256, size=1500)
        self._check(
            lambda cfg: lambda backend=None: histogram_via(
                keys, 256, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_stencil(self):
        image = np.random.default_rng(6).standard_normal((40, 40))
        self._check(
            lambda cfg: lambda backend=None: stencil_via(
                image, None, DEFAULT_MACHINE, cfg, backend=backend
            )
        )

    def test_csr5(self, coo, x):
        m = CSR5Matrix.from_coo(coo)
        self._check(
            lambda cfg: lambda backend=None: spmv_csr5_via(
                m, x, DEFAULT_MACHINE, cfg, backend=backend
            )
        )


# ----------------------------------------------------------------------
# the four Fig. 9 configurations, and the engine-selection surface
# ----------------------------------------------------------------------
class TestDseConfigsAndEngines:
    def test_every_config_replays_from_its_shape_group(self, coo, x):
        reps = {}
        for cfg in dse_configs():
            reps.setdefault(cfg.sram_kb, cfg)
        for cfg in dse_configs():
            rep = reps[cfg.sram_kb]
            csb = CSBMatrix.from_coo(coo, block_size=rep.csb_block_size)
            _, recording = _record(
                lambda backend=None: SPMV_VARIANTS["csb"][1](
                    csb, x, DEFAULT_MACHINE, rep, backend=backend
                )
            )
            want = SPMV_VARIANTS["csb"][1](csb, x, DEFAULT_MACHINE, cfg)
            got = _replay_both(recording, via_config=cfg)
            assert_result_identical(got, want)

    def test_cross_capacity_replay_refuses(self, coo, x):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        for cfg in (VIA_4_2P, VIA_4_4P):
            with pytest.raises(ReplayMismatchError):
                replay_recording(recording, via_config=cfg, engine="columnar")

    def test_default_engine_is_scalar(self):
        assert DEFAULT_REPLAY_ENGINE == "scalar"
        assert REPLAY_ENGINES == ("scalar", "columnar")

    def test_unknown_engine_is_rejected(self, coo, x):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        with pytest.raises(SimulationError):
            replay_recording(recording, via_config=VIA_16_4P, engine="simd")

    def test_fractional_latency_falls_back_to_scalar(self, coo, x):
        """Fractional DRAM latency voids the integer-arithmetic guarantee;
        the engine must take the scalar path *loudly* — once-per-config
        :class:`EngineFallbackWarning` plus the monotone
        ``engine_fallback_count`` — and stay bit-identical, not drift."""
        from repro.sim import columnar as columnar_mod
        from repro.sim.columnar import (
            EngineFallbackWarning,
            engine_fallback_count,
        )

        frac = dataclasses.replace(DEFAULT_MACHINE, dram_latency=100.5)
        assert not machine_latencies_integral(frac)
        assert machine_latencies_integral(DEFAULT_MACHINE)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        # re-arm the once-per-config dedupe so this test is order-independent
        with columnar_mod._FALLBACK_LOCK:
            columnar_mod._FALLBACK_WARNED.clear()
        before = engine_fallback_count()
        with pytest.warns(EngineFallbackWarning, match="narration"):
            want = SPMV_VARIANTS["csb"][1](csb, x, frac, VIA_16_4P)
        with pytest.warns(EngineFallbackWarning, match="replay"):
            got = _replay_both(recording, machine=frac, via_config=VIA_16_4P)
        assert engine_fallback_count() > before
        assert_result_identical(got, want)


# ----------------------------------------------------------------------
# artifact round-trip, cross-machine slow path, and the memo discipline
# ----------------------------------------------------------------------
class TestRoundTripAndMachines:
    def test_disk_roundtrip_is_bit_identical(self, coo, x, tmp_path):
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        want = SPMV_VARIANTS["csb"][1](csb, x, DEFAULT_MACHINE, VIA_16_4P)
        path = tmp_path / "rec.npz"
        save_recordings(path, {"k": recording})
        loaded, _ = load_recordings(path)
        got = _replay_both(loaded["k"], via_config=VIA_16_4P)
        assert_result_identical(got, want)
        np.testing.assert_array_equal(got.output, want.output)

    def test_cross_machine_replay_is_bit_identical(self, coo, x):
        # pricing knobs differ, stream shape does not: this exercises the
        # columnar memory pass (sequential cache walk + vector attribution)
        target = dataclasses.replace(
            DEFAULT_MACHINE,
            dram_latency=DEFAULT_MACHINE.dram_latency + 60,
            mlp_stream=DEFAULT_MACHINE.mlp_stream / 2,
        )
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        want = SPMV_VARIANTS["csb"][1](csb, x, target, VIA_16_4P)
        got = _replay_both(recording, machine=target, via_config=VIA_16_4P)
        assert_result_identical(got, want)

    def test_cross_machine_memo_is_per_engine(self, coo, x):
        """One memo entry per (engine, machine): repeated columnar replays
        reuse theirs, and the scalar memo entry stays separate."""
        target = dataclasses.replace(
            DEFAULT_MACHINE,
            dram_latency=DEFAULT_MACHINE.dram_latency + 60,
        )
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        _, recording = _record(
            lambda backend=None: SPMV_VARIANTS["csb"][1](
                csb, x, DEFAULT_MACHINE, VIA_16_2P, backend=backend
            )
        )
        for _ in range(3):
            replay_recording(
                recording, machine=target, via_config=VIA_16_4P,
                engine="columnar",
            )
        assert len(recording._machine_memo) == 1
        replay_recording(
            recording, machine=target, via_config=VIA_16_4P, engine="scalar"
        )
        assert len(recording._machine_memo) == 2


# ----------------------------------------------------------------------
# the capacity-invariant SpMA/SpMM shared-baseline path
# ----------------------------------------------------------------------
class TestSharedBaseline:
    @pytest.mark.parametrize("make_units", [spma_units, spmm_units])
    def test_shared_baseline_replays_columnar_identically(
        self, make_units, tmp_path
    ):
        """SpMA/SpMM baselines drop the SSPM capacity from their key: the
        4KB group's baseline replays the 16KB group's artifact.  Routing
        that replay through the columnar engine must reproduce the direct
        run bit for bit."""
        coll = small_collection(2, seed=41, max_n=128)
        rdir = str(tmp_path / "rec")
        direct = run_units(
            make_units(coll, via_config=VIA_4_2P), RunnerConfig()
        )
        # warm the store with the *other* capacity group only
        warm = record_units(
            make_units(coll, via_config=VIA_16_2P), record_dir=rdir
        )
        run_units(warm, RunnerConfig())
        for engine in REPLAY_ENGINES:
            replays = replay_units(
                make_units(coll, via_config=VIA_4_2P),
                record_dir=rdir,
                engine=engine,
            )
            got = run_units(replays, RunnerConfig())
            assert got.records == direct.records, engine


# ----------------------------------------------------------------------
# end-to-end: the Fig. 9 DSE priced by the columnar engine
# ----------------------------------------------------------------------
class TestDseEndToEnd:
    def test_columnar_dse_matches_direct_and_scalar(self):
        coll = small_collection(3, seed=9, max_n=128)
        direct = run_dse(coll)
        with tempfile.TemporaryDirectory() as td:
            scalar = run_dse(coll, record_dir=td, engine="scalar")
            columnar = run_dse(
                coll, record_dir=td, engine="columnar", validate=True
            )
        for kernel, per_config in direct.cycles.items():
            for cfg_name, want in per_config.items():
                assert _bits(scalar.cycles[kernel][cfg_name]) == _bits(want)
                assert _bits(columnar.cycles[kernel][cfg_name]) == _bits(want)
