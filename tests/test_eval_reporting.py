"""Tests for the text renderers and category aggregation edge cases."""

import numpy as np
import pytest

from repro.eval import (
    CategorizedResult,
    CategoryRow,
    categorize,
    render_categories,
    render_dict,
    render_ratio_line,
    render_table,
)
from repro.eval.harness import SweepRecord


def record(metric, **speedups):
    return SweepRecord(
        name=f"m{metric}",
        domain="test",
        n=100,
        nnz=500,
        metric=metric,
        speedup=dict(speedups),
    )


class TestCategorize:
    def test_empty_records(self):
        cats = categorize([])
        assert cats.rows == [] and cats.overall == {}

    def test_single_record_spreads_across_categories(self):
        cats = categorize([record(1.0, csr=2.0)])
        assert sum(r.count for r in cats.rows) == 1
        assert cats.overall["csr"] == pytest.approx(2.0)

    def test_categories_sorted_by_metric(self):
        recs = [record(m, csr=float(m)) for m in (4, 1, 3, 2, 8, 7, 6, 5)]
        cats = categorize(recs)
        medians = [r.median_metric for r in cats.rows]
        assert medians == sorted(medians)

    def test_overall_is_geomean(self):
        recs = [record(1, csr=1.0), record(2, csr=4.0)]
        assert categorize(recs).overall["csr"] == pytest.approx(2.0)

    def test_missing_keys_tolerated(self):
        recs = [record(1, csr=2.0), record(2, csb=3.0)]
        cats = categorize(recs)
        assert set(cats.overall) == {"csb", "csr"}

    def test_series_helper(self):
        cats = CategorizedResult(
            rows=[
                CategoryRow(1.0, 2, {"csr": 1.5}),
                CategoryRow(5.0, 2, {"csr": 2.5}),
            ],
            overall={"csr": 2.0},
        )
        assert cats.series("csr") == [1.5, 2.5]
        assert np.isnan(cats.series("nope")).all()


class TestRenderers:
    def test_render_table_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert text.startswith("T")

    def test_render_categories_empty(self):
        text = render_categories("X", CategorizedResult([], {}), metric_label="m")
        assert "(no data)" in text

    def test_render_ratio_line(self):
        line = render_ratio_line("energy", 3.51, 3.8)
        assert "3.51x" in line and "3.80x" in line

    def test_render_dict(self):
        text = render_dict("D", {"x": 1.25}, unit="x")
        assert "1.250x" in text

    def test_render_categories_full(self):
        recs = [record(m, csr=2.0, csb=4.0) for m in range(8)]
        text = render_categories("F", categorize(recs), metric_label="nnz")
        assert "csb speedup" in text
        assert text.count("\n") >= 6  # title + rule + header + 4 cats + avg
