"""Tests for the runtime invariant layer on the op-stream IR.

Two halves, mirroring the contract of
:class:`~repro.sim.backends.InvariantBackend`:

* **clean pass** — validation wrapped around real kernels (including the
  Fig. 9 DSE sweep) never trips and never perturbs a result bit;
* **provable trip** — an injected mis-priced op (counter decrement,
  cache-conservation break, phantom mispredicts, non-finite accumulation,
  SSPM over-occupancy) raises :class:`~repro.errors.InvariantError` at
  *that* op, with the offending op attached.

Plus the per-op constructor validators in :mod:`repro.sim.ops` and the
finished-result checks in
:func:`~repro.sim.backends.check_result_invariants`.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import InvariantError, SimulationError
from repro.eval.dse import run_dse
from repro.formats.csr import CSRMatrix
from repro.kernels.spmv import SPMV_VARIANTS
from repro.matrices import small_collection
from repro.sim.backends import (
    InvariantBackend,
    RecorderBackend,
    check_result_invariants,
    replay_recording,
)
from repro.sim.config import DEFAULT_MACHINE
from repro.sim.core import Core
from repro.sim.ops import (
    AllocOp,
    BranchesOp,
    GatherOp,
    LoadStreamOp,
    ScalarOpsOp,
    VectorOpOp,
)
from repro.via.config import VIA_16_2P
from repro.via.engine import ViaDevice

pytestmark = pytest.mark.smoke


def _bits(value) -> bytes:
    return np.float64(value).tobytes()


# ----------------------------------------------------------------------
# injected mis-priced ops: each breaks exactly one conservation law
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _DecrementOp(ScalarOpsOp):
    """Prices negative work — monotonicity violation."""

    def apply(self, core):
        core.counters.scalar_uops -= 1


@dataclasses.dataclass(frozen=True)
class _PhantomAccessOp(ScalarOpsOp):
    """A line access served by no cache level — conservation violation."""

    def apply(self, core):
        core.counters.mem_line_accesses += 1


@dataclasses.dataclass(frozen=True)
class _PhantomMispredictOp(ScalarOpsOp):
    """Mispredicts without branches."""

    def apply(self, core):
        core.counters.branch_mispredicts += 2.0


@dataclasses.dataclass(frozen=True)
class _InfiniteLatencyOp(ScalarOpsOp):
    """A non-finite accumulation."""

    def apply(self, core):
        core.counters.stream_miss_latency = float("inf")


@dataclasses.dataclass(frozen=True)
class _OverfillSspmOp(ScalarOpsOp):
    """Pushes SSPM occupancy past the CAM capacity."""

    def apply(self, core):
        core.via.sspm._element_count = core.via.config.cam_entries + 1


class TestTripsOnMispricedOps:
    def _core(self, via=None):
        return Core(DEFAULT_MACHINE, via=via, backend=InvariantBackend())

    def test_counter_decrement_trips_with_op_attached(self):
        core = self._core()
        core._emit(ScalarOpsOp(4))  # clean op first: checker is per-delta
        bad = _DecrementOp(1)
        with pytest.raises(InvariantError, match="decreased") as excinfo:
            core._emit(bad)
        assert excinfo.value.op is bad

    def test_cache_conservation_trips(self):
        core = self._core()
        with pytest.raises(InvariantError, match="cache conservation"):
            core._emit(_PhantomAccessOp(1))

    def test_phantom_mispredicts_trip(self):
        core = self._core()
        with pytest.raises(InvariantError, match="mispredicts"):
            core._emit(_PhantomMispredictOp(1))

    def test_non_finite_counter_trips(self):
        core = self._core()
        with pytest.raises(InvariantError, match="non-finite"):
            core._emit(_InfiniteLatencyOp(1))

    def test_sspm_over_occupancy_trips(self):
        device = ViaDevice(VIA_16_2P)
        core = self._core(via=device)
        with pytest.raises(InvariantError, match="SSPM occupancy"):
            core._emit(_OverfillSspmOp(1))

    def test_real_ops_pass_clean(self):
        core = self._core()
        arr = core.alloc("a", 1024)
        core._emit(LoadStreamOp("a", 0, 1024))
        core._emit(VectorOpOp("fma", 8))
        core._emit(BranchesOp(16, 0.05))
        idx = np.arange(0, 64, 2)
        core._emit(GatherOp("a", idx, 4))
        result = core.finalize("clean", output=None)
        assert result.cycles > 0
        assert arr is core.mem["a"]

    def test_validating_recorder_trips_too(self):
        """InvariantBackend composes around the recorder: a bad op is
        caught while recording, before a poisoned artifact can be saved."""
        core = Core(
            DEFAULT_MACHINE, backend=InvariantBackend(RecorderBackend())
        )
        core._emit(ScalarOpsOp(2))
        with pytest.raises(InvariantError):
            core._emit(_DecrementOp(1))


# ----------------------------------------------------------------------
# constructor validators on the op dataclasses
# ----------------------------------------------------------------------
class TestOpValidators:
    def test_negative_counts_are_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            ScalarOpsOp(-1)
        with pytest.raises(SimulationError):
            VectorOpOp("fma", -2)
        with pytest.raises(SimulationError):
            BranchesOp(-3, 0.05)
        with pytest.raises(SimulationError):
            LoadStreamOp("a", 0, -1)
        with pytest.raises(SimulationError):
            AllocOp("a", -8, 8)

    def test_zero_counts_are_fine(self):
        ScalarOpsOp(0)
        LoadStreamOp("a", 0, 0)


# ----------------------------------------------------------------------
# finished-result checks (the replay fast path uses these)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def spmv_run():
    coo = small_collection(1, seed=61, max_n=128).specs[0].build()
    mat = CSRMatrix.from_coo(coo)
    x = np.random.default_rng(3).standard_normal(coo.cols)
    base_fn, _ = SPMV_VARIANTS["csr"]
    return lambda backend=None: base_fn(mat, x, DEFAULT_MACHINE, backend=backend)


class TestResultInvariants:
    def test_clean_result_passes_and_is_returned(self, spmv_run):
        result = spmv_run()
        assert check_result_invariants(result) is result

    def test_fast_path_replay_validates_clean(self, spmv_run):
        backend = RecorderBackend()
        want = spmv_run(backend)
        got = replay_recording(backend.recording, validate=True)
        assert _bits(got.cycles) == _bits(want.cycles)

    def test_corrupted_energy_trips(self, spmv_run):
        result = dataclasses.replace(spmv_run(), energy_pj=-1.0)
        with pytest.raises(InvariantError, match="energy"):
            check_result_invariants(result)

    def test_corrupted_breakdown_component_trips(self, spmv_run):
        result = spmv_run()
        bad = dataclasses.replace(
            result,
            breakdown=dataclasses.replace(result.breakdown, issue_cycles=-5.0),
        )
        with pytest.raises(InvariantError, match="negative"):
            check_result_invariants(bad)

    def test_corrupted_counter_trips(self, spmv_run):
        result = spmv_run()
        bad = dataclasses.replace(
            result,
            counters=dataclasses.replace(result.counters, mem_line_accesses=10**9),
        )
        with pytest.raises(InvariantError, match="cache conservation"):
            check_result_invariants(bad)


# ----------------------------------------------------------------------
# the acceptance bar: validation passes clean on the Fig. 9 sweep and
# changes nothing
# ----------------------------------------------------------------------
class TestFig9Clean:
    def test_validated_dse_is_bit_identical_to_plain(self):
        coll = small_collection(2, seed=63, max_n=128)
        plain = run_dse(coll)
        validated = run_dse(coll, validate=True)
        for kernel, per_config in plain.cycles.items():
            for cfg_name, want in per_config.items():
                assert _bits(validated.cycles[kernel][cfg_name]) == _bits(want)
