"""Property-based tests (hypothesis) for the sparse-format substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, convert
from repro.sim import compress_lines

FORMATS = ["csr", "csc", "csb", "spc5", "sellcs"]


@st.composite
def coo_matrices(draw, max_dim=24):
    """Random small sparse matrices as canonical COO."""
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, rows * cols))
    if nnz == 0:
        return COOMatrix.empty((rows, cols))
    positions = draw(
        st.lists(
            st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1)),
            min_size=nnz,
            max_size=nnz,
        )
    )
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False).filter(lambda v: v != 0.0),
            min_size=nnz,
            max_size=nnz,
        )
    )
    rr = [p[0] for p in positions]
    cc = [p[1] for p in positions]
    return COOMatrix((rows, cols), rr, cc, values)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_all_formats_roundtrip_dense(coo):
    dense = coo.to_dense()
    for fmt in FORMATS:
        mat = convert(coo, fmt)
        np.testing.assert_allclose(mat.to_dense(), dense, rtol=1e-12)


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_all_formats_preserve_nnz(coo):
    for fmt in FORMATS:
        assert convert(coo, fmt).nnz == coo.nnz


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_transpose_involution(coo):
    np.testing.assert_allclose(
        coo.transpose().transpose().to_dense(), coo.to_dense()
    )


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_coo_is_canonical(coo):
    # sorted row-major, no duplicate coordinates
    keys = coo.row * coo.cols + coo.col
    assert np.all(np.diff(keys) > 0) or keys.size <= 1


@given(
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=50)
)
@settings(max_examples=40, deadline=None)
def test_duplicate_summing_matches_dense_accumulation(pairs):
    rr = [p[0] for p in pairs]
    cc = [p[1] for p in pairs]
    vals = [float(i + 1) for i in range(len(pairs))]
    coo = COOMatrix((10, 10), rr, cc, vals)
    dense = np.zeros((10, 10))
    for r, c, v in zip(rr, cc, vals):
        dense[r, c] += v
    np.testing.assert_allclose(coo.to_dense(), dense)


@given(coo_matrices(max_dim=16))
@settings(max_examples=30, deadline=None)
def test_spmv_reference_matches_dense(coo):
    from repro.formats import CSRMatrix

    x = np.linspace(-1, 1, coo.cols)
    csr = CSRMatrix.from_coo(coo)
    np.testing.assert_allclose(
        csr.spmv_reference(x), coo.to_dense() @ x, rtol=1e-9, atol=1e-9
    )


@given(
    st.lists(st.integers(0, 2**20), min_size=0, max_size=200),
    st.sampled_from([32, 64, 128]),
)
@settings(max_examples=40, deadline=None)
def test_compress_lines_properties(addresses, line_bytes):
    addrs = np.asarray(addresses, dtype=np.int64)
    lines, counts = compress_lines(addrs, line_bytes)
    # counts partition the raw accesses
    assert counts.sum() == addrs.size
    # no two consecutive runs share a line
    assert lines.size <= 1 or np.all(np.diff(lines) != 0)
    # expanding the runs reproduces the line sequence
    if addrs.size:
        np.testing.assert_array_equal(
            np.repeat(lines, counts), addrs // line_bytes
        )
