"""Job-spec validation, batching keys, and the structured error mapping.

The serving layer's contract is that *every* rejection and failure is a
structured payload — so the spec validator must catch malformed requests
with ``bad_request``, and :func:`repro.serve.jobs.error_payload` must map
the whole exception surface (admission shedding, cancellation, the eval
layer's ``SweepError``/``SweepInterrupted``, timeouts) onto stable codes.
"""

import asyncio

import pytest

from repro.errors import (
    AdmissionError,
    ConfigError,
    FormatError,
    JobCancelled,
    ReproError,
    ServeError,
    SweepError,
    SweepInterrupted,
)
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    error_payload,
    expand_sweep,
)


class TestJobSpecValidation:
    def test_minimal_simulate_spec(self):
        spec = JobSpec.from_payload({"kind": "simulate"})
        assert spec.kernel == "spmv"
        assert spec.formats == ("csr",)
        assert spec.priority == 0

    def test_lists_coerce_to_tuples(self):
        spec = JobSpec.from_payload(
            {"kind": "sweep", "port_sweep": [1, 2, 4], "formats": ["csr", "csb"]}
        )
        assert spec.port_sweep == (1, 2, 4)
        assert spec.formats == ("csr", "csb")

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"kind": "teleport"}, "unknown job kind"),
            ({"kind": "simulate", "kernel": "gemm"}, "unknown kernel"),
            ({"kind": "simulate", "count": 0}, "count"),
            ({"kind": "simulate", "count": 10_000}, "count"),
            ({"kind": "simulate", "min_n": 512, "max_n": 64}, "min_n"),
            ({"kind": "simulate", "formats": ["bogus"]}, "formats"),
            ({"kind": "simulate", "formats": []}, "formats"),
            ({"kind": "simulate", "sram_kb": 0}, "sram_kb"),
            ({"kind": "sweep"}, "port_sweep"),
            ({"kind": "sweep", "port_sweep": [0]}, "positive"),
            ({"kind": "sweep", "port_sweep": list(range(1, 40))}, "capped"),
            ({"kind": "sleep", "duration_s": -1}, "duration_s"),
            ({"kind": "simulate", "deadline_s": 0}, "deadline_s"),
            ({"kind": "simulate", "timeout_s": -2}, "timeout_s"),
            ({"kind": "simulate", "prioritty": 3}, "unknown job spec field"),
            ({}, "kind"),
            ("not-a-dict", "must be an object"),
        ],
    )
    def test_bad_specs_raise_bad_request(self, payload, fragment):
        with pytest.raises(ServeError) as info:
            JobSpec.from_payload(payload)
        assert info.value.code == "bad_request"
        assert fragment in str(info.value)

    def test_payload_round_trip(self):
        spec = JobSpec.from_payload(
            {"kind": "replay", "kernel": "spma", "count": 3, "priority": 5}
        )
        assert JobSpec.from_payload(spec.to_payload()) == spec


class TestBatchKeys:
    def test_replay_key_ignores_ports(self):
        a = JobSpec(kind="replay", kernel="spma", ports=2)
        b = JobSpec(kind="replay", kernel="spma", ports=8)
        assert a.batch_key() == b.batch_key()

    def test_sweep_and_replay_share_a_family(self):
        sweep = JobSpec(kind="sweep", kernel="spma", port_sweep=(1, 2))
        replay = JobSpec(kind="replay", kernel="spma")
        assert sweep.batch_key() == replay.batch_key()

    def test_simulate_key_depends_on_ports(self):
        a = JobSpec(kind="simulate", ports=2)
        b = JobSpec(kind="simulate", ports=4)
        assert a.batch_key() != b.batch_key()

    def test_capacity_always_splits_batches(self):
        a = JobSpec(kind="replay", sram_kb=4)
        b = JobSpec(kind="replay", sram_kb=16)
        assert a.batch_key() != b.batch_key()

    def test_different_workloads_never_share(self):
        a = JobSpec(kind="replay", kernel="spma", seed=1)
        b = JobSpec(kind="replay", kernel="spma", seed=2)
        c = JobSpec(kind="replay", kernel="spmm", seed=1)
        assert len({a.batch_key(), b.batch_key(), c.batch_key()}) == 3

    def test_expand_sweep_preserves_priority_and_order(self):
        spec = JobSpec(kind="sweep", kernel="spma", port_sweep=(1, 4, 2),
                       priority=7)
        subs = expand_sweep(spec)
        assert [s.ports for s in subs] == [1, 4, 2]
        assert all(s.kind == "replay" and s.priority == 7 for s in subs)


class TestJobEnvelope:
    def test_ids_are_unique_and_states_start_pending(self):
        jobs = [Job(spec=JobSpec(kind="report")) for _ in range(10)]
        assert len({j.job_id for j in jobs}) == 10
        assert all(j.state is JobState.PENDING and not j.terminal for j in jobs)

    def test_deadline_check(self):
        job = Job(spec=JobSpec(kind="report", deadline_s=10.0))
        assert not job.deadline_exceeded(now=job.submitted_at + 9.0)
        assert job.deadline_exceeded(now=job.submitted_at + 11.0)
        no_deadline = Job(spec=JobSpec(kind="report"))
        assert not no_deadline.deadline_exceeded(now=1e12)

    def test_payload_includes_error_and_result(self):
        job = Job(spec=JobSpec(kind="report"))
        job.state = JobState.FAILED
        job.error = {"code": "timeout", "reason": "too slow"}
        payload = job.to_payload()
        assert payload["state"] == "failed"
        assert payload["error"]["code"] == "timeout"


class TestErrorMapping:
    """The satellite: SweepInterrupted/SweepError → structured payloads."""

    @pytest.mark.parametrize(
        "exc, code, has_retry",
        [
            (AdmissionError("full", code="queue_full", retry_after_s=0.25),
             "queue_full", True),
            (AdmissionError("bye", code="draining"), "draining", False),
            (JobCancelled("stop"), "cancelled", False),
            (JobCancelled("drained", code="drained"), "drained", False),
            (ServeError("no such job", code="not_found"), "not_found", False),
            (ServeError("slow", code="timeout", retry_after_s=1.0),
             "timeout", True),
            (SweepInterrupted("SIGTERM mid-sweep"), "interrupted", True),
            (SweepError("unit exploded"), "sweep_error", False),
            (ConfigError("sram_kb must be positive"), "bad_request", False),
            (FormatError("row_ptr not monotone"), "bad_request", False),
            (TimeoutError("wait_for"), "timeout", True),
            (asyncio.TimeoutError(), "timeout", True),
            (ReproError("generic library failure"), "repro_error", False),
            (RuntimeError("programming error"), "internal", False),
        ],
    )
    def test_exception_to_code(self, exc, code, has_retry):
        payload = error_payload(exc)
        assert payload["code"] == code
        assert payload["reason"]  # never empty
        assert ("retry_after_s" in payload) == has_retry

    def test_interrupted_is_marked_retryable(self):
        # the runner's SIGINT/SIGTERM flush means the work is resumable:
        # clients must be told to retry, not to give up
        payload = error_payload(SweepInterrupted("interrupted"))
        assert payload["retry_after_s"] > 0

    def test_sweep_error_is_permanent(self):
        # deterministic kernel failures repeat on retry; no retry hint
        assert "retry_after_s" not in error_payload(SweepError("boom"))

    def test_reason_falls_back_to_type_name(self):
        assert error_payload(RuntimeError())["reason"] == "RuntimeError"
