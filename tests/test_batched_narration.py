"""Differential suite for batched (born-columnar) narration.

The batched narration pipeline replaces per-op ``Op`` construction in
``Core._emit`` with a :class:`~repro.sim.columnar.ColumnarBuilder` that
buffers narration and prices whole flushes through the columnar kernels.
The contract is the same as every other engine seam in this repo:
**bit-identical results** to the scalar ``Op.apply`` walk — not close,
identical.

Three layers of evidence:

* the record-unit differential: recording every kernel family and SpMV
  format under every Fig. 9 VIA config and two machines, once per
  narration mode, must produce byte-equal sweep records (validation on,
  so flush-granularity invariant checks ride along);
* direct-core narration across flush boundaries: flush sizes 1 (flush
  after every op), the builder's initial capacity (flush exactly as the
  buffer fills — never grows), and capacity+1 (one geometric growth,
  then flush), plus finalize-time partial flushes;
* a hypothesis fuzz over random op sequences and flush sizes, comparing
  finalized results between modes.

Also pins the mode surface itself: ``set_narration_mode`` validates and
round-trips, flushes are counted, and the recorder keeps artifacts
replayable across modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.eval.units import (
    compute_unit,
    record_units,
    spma_units,
    spmm_units,
    spmv_units,
)
from repro.matrices.collection import small_collection
from repro.sim.backends import (
    DirectBackend,
    InvariantBackend,
    RecorderBackend,
    replay_recording,
)
from repro.sim.config import DEFAULT_MACHINE
from repro.sim.core import (
    DEFAULT_FLUSH_OPS,
    Core,
    narration_flush_count,
    narration_mode,
    set_narration_mode,
)
from repro.via.config import VIA_4_2P, VIA_16_2P, VIA_16_4P
from repro.via.engine import ViaDevice

from tests.test_ops_replay_differential import assert_result_identical

pytestmark = [pytest.mark.smoke, pytest.mark.columnar]

#: the builder's initial capacity; flush sizes at/over it exercise growth
_BUILDER_CAPACITY = 1024


@pytest.fixture(autouse=True)
def _restore_mode():
    """Every test leaves the process-wide narration mode as it found it."""
    prev = narration_mode()
    yield
    set_narration_mode(prev)


# ----------------------------------------------------------------------
# direct-core narration: one deterministic stream, every op kind
# ----------------------------------------------------------------------
def _narrate_everything(core):
    """Drive every narration method, interleaving compute/memory/VIA."""
    rng = np.random.default_rng(5)
    a = core.alloc("a", 4096, 8)
    idx = core.alloc("idx", 4096, 4)
    for i in range(40):
        core.scalar_ops(3)
        core.vector_op("alu", 8)
        core.vector_op("fma", 4)
        core.branches(6, 0.125)
        core.dependency_stall(2.0)
        core.load_stream(a, (i * 32) % 2048, 32)
        core.gather(a, rng.integers(0, 4096, size=12))
        core.scatter(a, rng.integers(0, 4096, size=8))
        core.gather_serial(2, 4)
        core.scatter_serial(1, 4)
        core.load_windows(idx, rng.integers(0, 4000, size=4), 8)
        core.scalar_load(idx, rng.integers(0, 4096, size=5),
                         dependent=i % 2 == 0)
        core.scalar_store(idx, rng.integers(0, 4096, size=3), dependent=False)
        core.bulk_stream(a, passes=2, write=i % 3 == 0)
        core.store_stream(a, (i * 32) % 2048, 32)
        core.record_via_op(
            sspm_elements=16, cam_searches=16, port_passes=2, count=3
        )
        core.record_via_op(sspm_elements=8, cam_searches=0, port_cycles=5.0)
    return core.finalize("everything")


def _run_stream(mode, *, flush_ops=DEFAULT_FLUSH_OPS, backend=None,
                validate=False):
    prev = set_narration_mode(mode)
    try:
        backend = backend if backend is not None else RecorderBackend()
        if validate:
            backend = InvariantBackend(backend)
        core = Core(
            DEFAULT_MACHINE,
            via=ViaDevice(VIA_16_2P),
            backend=backend,
            flush_ops=flush_ops,
        )
        return _narrate_everything(core)
    finally:
        set_narration_mode(prev)


class TestFlushBoundaries:
    """Flush sizes 1, builder capacity, and capacity+1 (forced growth)."""

    want = None

    @pytest.fixture(autouse=True)
    def _scalar_reference(self):
        if TestFlushBoundaries.want is None:
            TestFlushBoundaries.want = _run_stream("scalar")

    @pytest.mark.parametrize(
        "flush_ops",
        [1, _BUILDER_CAPACITY, _BUILDER_CAPACITY + 1, DEFAULT_FLUSH_OPS],
        ids=["every-op", "at-capacity", "one-growth", "default"],
    )
    def test_bit_identical_across_flush_sizes(self, flush_ops):
        got = _run_stream("batched", flush_ops=flush_ops)
        assert_result_identical(got, self.want)

    def test_flushes_are_counted(self):
        before = narration_flush_count()
        _run_stream("batched", flush_ops=100)
        assert narration_flush_count() > before

    def test_invariant_backend_validates_at_flush_granularity(self):
        got = _run_stream("batched", flush_ops=64, validate=True)
        assert_result_identical(got, self.want)

    def test_direct_backend_matches_recorder(self):
        got = _run_stream("batched", backend=DirectBackend())
        assert_result_identical(got, self.want)

    def test_batched_recording_replays_identically(self):
        recorder = RecorderBackend()
        got = _run_stream("batched", flush_ops=128, backend=recorder)
        replayed = replay_recording(recorder.recording, engine="columnar")
        assert_result_identical(replayed, got)
        assert_result_identical(
            replay_recording(recorder.recording, engine="scalar"), got
        )


# ----------------------------------------------------------------------
# the record-unit differential: kernels x formats x machines x VIA
# ----------------------------------------------------------------------
def _unit_matrix(machine, via, collection):
    units = list(
        spmv_units(
            collection,
            formats=("csr", "csb", "spc5", "sellcs"),
            machine=machine,
            via_config=via,
            validate=True,
        )
    )
    units += list(
        spma_units(collection, machine=machine, via_config=via, validate=True)
    )
    units += list(
        spmm_units(
            collection, machine=machine, via_config=via, max_n=96,
            validate=True,
        )
    )
    return units


def _record_dicts(mode, machine, via, collection, record_dir):
    prev = set_narration_mode(mode)
    try:
        units = record_units(
            _unit_matrix(machine, via, collection), record_dir=record_dir
        )
        return [compute_unit(u).to_dict() for u in units]
    finally:
        set_narration_mode(prev)


class TestRecordUnitDifferential:
    @pytest.fixture(scope="class")
    def collection(self):
        return small_collection(2, seed=13, max_n=96)

    @pytest.mark.parametrize("via", [VIA_16_2P, VIA_16_4P, VIA_4_2P],
                             ids=lambda v: v.name)
    def test_batched_recording_bit_identical(self, via, collection, tmp_path):
        scalar = _record_dicts(
            "scalar", DEFAULT_MACHINE, via, collection, str(tmp_path / "s")
        )
        batched = _record_dicts(
            "batched", DEFAULT_MACHINE, via, collection, str(tmp_path / "b")
        )
        assert scalar == batched

    def test_second_machine(self, collection, tmp_path):
        import dataclasses

        machine = dataclasses.replace(DEFAULT_MACHINE, dram_latency=150)
        scalar = _record_dicts(
            "scalar", machine, VIA_16_2P, collection, str(tmp_path / "s")
        )
        batched = _record_dicts(
            "batched", machine, VIA_16_2P, collection, str(tmp_path / "b")
        )
        assert scalar == batched


# ----------------------------------------------------------------------
# hypothesis: random op sequences across random flush boundaries
# ----------------------------------------------------------------------
_OP_CHOICES = st.sampled_from([
    ("scalar_ops", 5),
    ("vector_alu", 7),
    ("vector_fma", 3),
    ("branches", 4),
    ("stall", 1.5),
    ("load_stream", 16),
    ("store_stream", 16),
    ("gather", 9),
    ("via_passes", 12),
    ("via_cycles", 6.0),
    ("bulk", 1),
])


def _apply(core, arr, op, seed):
    kind, val = op
    if kind == "scalar_ops":
        core.scalar_ops(val)
    elif kind == "vector_alu":
        core.vector_op("alu", val)
    elif kind == "vector_fma":
        core.vector_op("fma", val)
    elif kind == "branches":
        core.branches(val, 0.25)
    elif kind == "stall":
        core.dependency_stall(val)
    elif kind == "load_stream":
        core.load_stream(arr, seed % 512, val)
    elif kind == "store_stream":
        core.store_stream(arr, seed % 512, val)
    elif kind == "gather":
        core.gather(
            arr, np.random.default_rng(seed).integers(0, 1024, size=val)
        )
    elif kind == "via_passes":
        core.record_via_op(
            sspm_elements=val, cam_searches=val, port_passes=1
        )
    elif kind == "via_cycles":
        core.record_via_op(
            sspm_elements=4, cam_searches=2, port_cycles=val
        )
    else:
        core.bulk_stream(arr, passes=2, write=False)


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(_OP_CHOICES, min_size=0, max_size=60),
    flush_ops=st.sampled_from([1, 2, 7, 1024, 1025]),
)
def test_fuzzed_streams_bit_identical(ops, flush_ops):
    results = {}
    for mode in ("scalar", "batched"):
        prev = set_narration_mode(mode)
        try:
            core = Core(
                DEFAULT_MACHINE,
                via=ViaDevice(VIA_16_2P),
                backend=RecorderBackend(),
                flush_ops=flush_ops,
            )
            arr = core.alloc("buf", 1024, 8)
            for i, op in enumerate(ops):
                _apply(core, arr, op, i)
            results[mode] = core.finalize("fuzz")
        finally:
            set_narration_mode(prev)
    assert_result_identical(results["batched"], results["scalar"])


# ----------------------------------------------------------------------
# the mode surface
# ----------------------------------------------------------------------
class TestModeSurface:
    def test_default_is_batched(self):
        assert narration_mode() == "batched"

    def test_set_returns_previous_and_round_trips(self):
        assert set_narration_mode("scalar") == "batched"
        assert narration_mode() == "scalar"
        assert set_narration_mode("batched") == "scalar"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="unknown narration mode"):
            set_narration_mode("turbo")

    def test_backend_swap_flushes_pending_rows(self):
        set_narration_mode("batched")
        first = RecorderBackend()
        core = Core(DEFAULT_MACHINE, backend=first, flush_ops=10_000)
        core.alloc("a", 64, 8)
        core.scalar_ops(5)
        core.backend = RecorderBackend()
        # the pending rows landed in the *old* backend before the swap
        assert sum(len(block) for block in first._events) == 2
