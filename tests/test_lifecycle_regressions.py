"""Regression pins for the leaks the lifecycle analysis surfaced.

The VIA501/VIA502 audit over the serve pool and the eval supervisor
found three spawn-failure paths that stranded pipe file descriptors:

* ``WorkerPool._spawn`` closed its pipe ends only on ``OSError`` — any
  other exception out of ``Process(...)``/``start()`` leaked both;
* ``_WorkerHandle.__init__`` had no guard at all around process
  construction;
* ``Supervisor.run`` built its pool in a list comprehension, so a
  failure on the Nth spawn left the N-1 live workers unreachable by the
  ``finally: _shutdown()``.

Each test drives the real production code through the failing path with
real pipes and scripted processes, and asserts every descriptor ends up
closed.  Leaked fds compound: under fd exhaustion (the very condition
that makes spawns fail) a leak per retry turns a transient stall into a
permanent one.
"""

import multiprocessing as mp

import pytest

from repro.eval.supervisor import Supervisor, _WorkerHandle
from repro.serve.pool import WorkerPool


class _InertProc:
    """A process double: records lifecycle calls, runs nothing."""

    def __init__(self):
        self.started = False
        self.reaped = False

    def start(self):
        self.started = True

    def kill(self):
        self.reaped = True

    def terminate(self):
        self.reaped = True

    def join(self, timeout=None):
        self.reaped = True

    def is_alive(self):
        return False


class _FailsOnStart(_InertProc):
    def start(self):
        raise RuntimeError("start refused")


class _RecordingCtx:
    """Real pipes, scripted process construction.

    ``outcomes`` is consumed one entry per ``Process(...)`` call: an
    exception instance is raised from the constructor, the string
    ``"start-fail"`` yields a process whose ``start()`` raises, and
    ``"ok"`` yields an inert process.
    """

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.pipes = []
        self.procs = []

    def Pipe(self, duplex=True):
        pair = mp.get_context("spawn").Pipe(duplex)
        self.pipes.append(pair)
        return pair

    def Process(self, *args, **kwargs):
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        proc = _FailsOnStart() if outcome == "start-fail" else _InertProc()
        self.procs.append(proc)
        return proc

    def all_pipe_ends_closed(self):
        return all(conn.closed for pair in self.pipes for conn in pair)


class TestPoolSpawn:
    def test_non_oserror_from_start_closes_both_pipe_ends(self):
        pool = WorkerPool()
        pool._ctx = _RecordingCtx(["start-fail"])
        with pytest.raises(RuntimeError):
            pool._spawn(0)
        assert pool._ctx.all_pipe_ends_closed()

    def test_non_oserror_from_process_ctor_closes_both_pipe_ends(self):
        pool = WorkerPool()
        pool._ctx = _RecordingCtx([RuntimeError("unpicklable target")])
        with pytest.raises(RuntimeError):
            pool._spawn(0)
        assert pool._ctx.all_pipe_ends_closed()

    def test_oserror_still_backs_off_and_closes_pipes(self):
        pool = WorkerPool()
        pool._ctx = _RecordingCtx([OSError(24, "too many open files")])
        pool._spawn(0)  # retryable: schedules a respawn, does not raise
        assert pool._ctx.all_pipe_ends_closed()
        assert pool._workers[0] is None
        assert 0 in pool._respawn_at


class TestWorkerHandleSpawn:
    def test_failed_process_ctor_closes_both_pipe_ends(self):
        ctx = _RecordingCtx([RuntimeError("spawn refused")])
        with pytest.raises(RuntimeError):
            _WorkerHandle(ctx)
        assert ctx.all_pipe_ends_closed()

    def test_failed_start_closes_both_pipe_ends(self):
        ctx = _RecordingCtx(["start-fail"])
        with pytest.raises(RuntimeError):
            _WorkerHandle(ctx)
        assert ctx.all_pipe_ends_closed()

    def test_successful_spawn_keeps_only_the_parent_end(self):
        ctx = _RecordingCtx(["ok"])
        handle = _WorkerHandle(ctx)
        ((parent, child),) = ctx.pipes
        assert not parent.closed and child.closed
        handle.kill()
        assert ctx.all_pipe_ends_closed()


class TestSupervisorPartialPool:
    def test_nth_spawn_failure_reaps_the_live_workers(self):
        ctx = _RecordingCtx(["ok", "ok", RuntimeError("third spawn fails")])
        supervisor = Supervisor(
            ctx,
            workers=3,
            timeout_s=None,
            retries=0,
            backoff_s=0.0,
            on_outcome=lambda outcome: None,
        )
        with pytest.raises(RuntimeError):
            supervisor.run([(i, object()) for i in range(3)])
        assert supervisor.handles == []
        assert ctx.all_pipe_ends_closed()
        assert all(proc.reaped for proc in ctx.procs)
