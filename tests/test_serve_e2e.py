"""End-to-end: a real ``python -m repro.serve serve`` process over TCP.

Acceptance criteria for the serving subsystem:

* a live server handles >= 32 concurrent client requests (mixed
  simulate / replay / metrics) with **zero lost responses**;
* once the admission queue is full it sheds load with a structured
  ``queue_full`` error (code + reason + retry hint);
* on SIGTERM it drains cleanly — in-flight work completes or is
  reported cancelled, every waiter gets a response, and the process
  exits on its own.
"""

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.serve.client import ServeClient, ServeRequestError, read_ready_file

REPO = Path(__file__).resolve().parents[1]


def _spawn_server(tmp_path, *extra_args, name="srv"):
    """Start a serve process on an ephemeral port; return (proc, addr)."""
    ready = tmp_path / f"{name}.ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--ready-file", str(ready),
            "--cache-dir", str(tmp_path / f"{name}-cache"),
            "--record-dir", str(tmp_path / f"{name}-rec"),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    while not ready.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"server died before ready: {proc.stderr.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server never wrote the ready file")
        time.sleep(0.02)
    return proc, read_ready_file(ready)


def _stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-e2e")
    proc, addr = _spawn_server(tmp, "--max-queue", "128")
    yield addr
    _stop(proc)


class TestRoundTrip:
    def test_ping_reports_version_and_protocol(self, server):
        with ServeClient(**server) as client:
            pong = client.ping()
        assert pong["protocol"] == 1
        assert pong["version"]
        assert pong["draining"] is False

    def test_submit_poll_result(self, server):
        with ServeClient(**server) as client:
            job = client.submit({"kind": "report"})
            assert job["state"] in ("pending", "running", "done")
            result = client.result(job["job_id"], timeout_s=30)
        assert result["state"] == "done"
        assert "Table" in result["result"]["text"]

    def test_submit_wait_inline(self, server):
        with ServeClient(**server) as client:
            job = client.submit(
                {"kind": "simulate", "kernel": "spmv", "count": 1,
                 "seed": 77, "max_n": 96},
                wait=True, wait_timeout_s=60,
            )
        assert job["state"] == "done"
        assert job["result"]["geomean_speedup"]["csr"] > 0

    def test_bad_request_is_structured(self, server):
        with ServeClient(**server) as client:
            with pytest.raises(ServeRequestError) as info:
                client.submit({"kind": "teleport"})
        assert info.value.payload["code"] == "bad_request"
        assert "unknown job kind" in info.value.payload["reason"]

    def test_metrics_text_scrape(self, server):
        with ServeClient(**server) as client:
            client.submit({"kind": "report"}, wait=True, wait_timeout_s=30)
            text = client.metrics_text()
        assert "# TYPE serve_jobs_submitted counter" in text
        assert "serve_service_seconds_count" in text


class TestConcurrency:
    def test_32_concurrent_mixed_requests_zero_lost(self, server):
        """The headline acceptance test: 32 clients, no lost responses."""
        base = {"count": 1, "max_n": 96, "kernel": "spma"}

        def one(i):
            kind = ("simulate", "replay", "metrics")[i % 3]
            with ServeClient(**server, timeout_s=120) as client:
                if kind == "metrics":
                    snap = client.metrics()
                    return ("metrics", snap["jobs_submitted"] >= 0)
                payload = dict(base, kind=kind, seed=100 + (i % 4),
                               ports=1 + (i % 4))
                job = client.submit(payload)
                done = client.result(job["job_id"], timeout_s=120)
                return (kind, done["state"] == "done")

        with ThreadPoolExecutor(max_workers=32) as pool:
            results = list(pool.map(one, range(32)))

        assert len(results) == 32  # zero lost responses
        assert all(ok for _, ok in results), results
        kinds = {k for k, _ in results}
        assert kinds == {"simulate", "replay", "metrics"}

        with ServeClient(**server) as client:
            snap = client.metrics()
        # replay jobs sharing a recording key must actually have replayed
        assert snap["replay_hits"] > 0
        assert snap["jobs_completed"] >= 21  # the non-metrics requests

    def test_concurrent_requests_on_one_connection(self, server):
        # the protocol is async per line: several ids in flight at once
        with ServeClient(**server) as client:
            jobs = [client.submit({"kind": "report"}) for _ in range(4)]
            for job in jobs:
                done = client.result(job["job_id"], timeout_s=30)
                assert done["state"] == "done"


class TestShedding:
    def test_queue_full_returns_structured_error(self, tmp_path):
        proc, addr = _spawn_server(
            tmp_path, "--max-queue", "2", "--batch-window", "5.0",
            name="shed",
        )
        try:
            # shed_retries=0: this test pins the raw shed payload; the
            # default client would absorb the shed with backoff retries
            with ServeClient(**addr, shed_retries=0) as client:
                # fill the queue inside the long batch window
                for _ in range(2):
                    client.submit({"kind": "sleep", "duration_s": 0.05})
                with pytest.raises(ServeRequestError) as info:
                    client.submit({"kind": "sleep", "duration_s": 0.05})
                payload = info.value.payload
                assert payload["code"] == "queue_full"
                assert "retry" in payload["reason"]
                assert payload["retry_after_s"] > 0
                snap = client.metrics()
                assert snap["jobs_shed"] == 1
        finally:
            _stop(proc)

    def test_default_client_absorbs_shed_with_backoff(self, tmp_path):
        """The shed-retry satellite: the default client honours the
        ``queue_full`` retry hint instead of failing on first shed."""
        proc, addr = _spawn_server(
            tmp_path, "--max-queue", "2", "--batch-window", "0.05",
            "--workers", "2", name="shed-retry",
        )
        try:
            with ServeClient(**addr) as client:
                # more submissions than the queue holds at once: with
                # retries every one is eventually admitted and completes
                jobs = [
                    client.submit({"kind": "sleep", "duration_s": 0.02})
                    for _ in range(6)
                ]
                for job in jobs:
                    final = client.result(job["job_id"], timeout_s=30)
                    assert final["state"] == "done"
                snap = client.metrics()
                # the server really did shed (the retries were exercised,
                # not just admitted on a quiet queue) — and yet every
                # submission above got through
                assert snap["jobs_completed"] >= 6
        finally:
            _stop(proc)


class TestEstimate:
    """``estimate`` jobs round-trip through the live server without
    ever dispatching to the worker pool."""

    def test_estimate_round_trips_without_pool_dispatch(self, server):
        with ServeClient(**server) as client:
            before = client.metrics()
            job = client.submit(
                {"kind": "estimate", "kernel": "spmv", "count": 2,
                 "seed": 5, "max_n": 96},
                wait=True, wait_timeout_s=30,
            )
            after = client.metrics()
        assert job["state"] == "done"
        result = job["result"]
        assert result["source"] == "fallback"  # server has no --model-dir
        assert result["unit_count"] == 2
        assert result["predicted_cycles_total"] > 0
        assert after["model_estimate_hits"] == before["model_estimate_hits"] + 1
        # the pool never saw the job: no work units were executed for it
        assert after["units_executed"] == before["units_executed"]

    def test_estimate_served_from_cli_trained_model(self, tmp_path):
        # a tiny sweep writes a self-describing journal...
        from repro.eval.harness import sweep_spmv
        from repro.eval.runner import RunnerConfig
        from repro.matrices.collection import small_collection

        journal = tmp_path / "sweep.jsonl"
        sweep_spmv(
            small_collection(count=4, max_n=96),
            formats=("csr",),
            runner=RunnerConfig(workers=1, journal_path=str(journal)),
        )

        # ...the CLI trains and stores a model from it...
        model_dir = tmp_path / "models"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        out = subprocess.run(
            [
                sys.executable, "-m", "repro.model", "train",
                "--journal", str(journal),
                "--model-dir", str(model_dir),
                "--n-estimators", "20", "--json",
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        key = json.loads(out.stdout)["key"]

        # ...and a server started with --model-dir answers from it
        proc, addr = _spawn_server(
            tmp_path, "--model-dir", str(model_dir), name="model",
        )
        try:
            with ServeClient(**addr) as client:
                job = client.submit(
                    {"kind": "estimate", "kernel": "spmv", "count": 2,
                     "seed": 5, "max_n": 96},
                    wait=True, wait_timeout_s=30,
                )
                snap = client.metrics()
            assert job["state"] == "done"
            assert job["result"]["source"] == "model"
            assert job["result"]["model_key"] == key
            assert snap["model_estimate_hits"] == 1
            assert snap["units_executed"] == 0
        finally:
            _stop(proc)


class TestGracefulDrain:
    def test_sigterm_drains_inflight_and_reports_cancelled(self, tmp_path):
        proc, addr = _spawn_server(
            tmp_path, "--max-queue", "32", "--workers", "1",
            "--max-batch", "1", name="drain",
        )
        client = ServeClient(**addr, timeout_s=60)
        try:
            inflight = client.submit({"kind": "sleep", "duration_s": 1.0})
            time.sleep(0.3)  # let it dispatch
            queued = [
                client.submit({"kind": "sleep", "duration_s": 0.5})
                for _ in range(3)
            ]
            proc.send_signal(signal.SIGTERM)

            # every waiter still gets a response while the server drains
            done = client.result(inflight["job_id"], timeout_s=30)
            assert done["state"] == "done"
            for job in queued:
                final = client.result(job["job_id"], timeout_s=30)
                assert final["state"] in ("cancelled", "done")
                if final["state"] == "cancelled":
                    assert final["error"]["code"] == "drained"

            proc.wait(timeout=30)
            assert proc.returncode == 0
            stderr = proc.stderr.read()
            assert "drain" in stderr.lower()
        finally:
            client.close()
            _stop(proc)

    def test_submit_during_drain_is_refused(self, tmp_path):
        proc, addr = _spawn_server(
            tmp_path, "--workers", "1", "--max-batch", "1", name="drain2",
        )
        client = ServeClient(**addr, timeout_s=60)
        try:
            client.submit({"kind": "sleep", "duration_s": 1.0})
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            with pytest.raises(ServeRequestError) as info:
                client.submit({"kind": "report"})
            assert info.value.payload["code"] == "draining"
            proc.wait(timeout=30)
            assert proc.returncode == 0
        finally:
            client.close()
            _stop(proc)
