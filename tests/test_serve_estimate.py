"""Estimate jobs and cost-aware admission in the scheduler.

``estimate`` jobs must resolve synchronously at admission — terminal
before ``submit`` returns, zero work units executed, the worker pool
never touched.  Cost-aware admission (``max_queue_cost``) sheds on a
predicted-cycle budget on top of the slot budget, releases cost when
jobs leave the queue, and orders batches cheapest-first within a
priority level.  The worker-side guard is pinned too: an estimate spec
reaching :func:`repro.serve.execution.execute_request` is a dispatch
bug and raises.
"""

import asyncio

import pytest

from repro.errors import AdmissionError, ServeError
from repro.serve.execution import execute_request
from repro.serve.jobs import JobSpec, JobState
from repro.serve.scheduler import Scheduler, ServiceConfig

pytestmark = pytest.mark.model


def run(coro):
    return asyncio.run(coro)


def estimate_spec(**kw):
    payload = {"kind": "estimate", "kernel": "spmv", "count": 2,
               "min_n": 64, "max_n": 96, "formats": ["csr"]}
    payload.update(kw)
    return JobSpec.from_payload(payload)


def sim_spec(**kw):
    payload = {"kind": "simulate", "kernel": "spmv", "count": 1,
               "min_n": 64, "max_n": 96, "formats": ["csr"]}
    payload.update(kw)
    return JobSpec.from_payload(payload)


class TestEstimateJobs:
    def test_estimate_is_a_valid_kind(self):
        spec = estimate_spec()
        assert spec.kind == "estimate"
        # workload validation applies: bad kernel still rejected
        with pytest.raises(ServeError):
            estimate_spec(kernel="gemm")
        # replay-only knobs stay rejected
        with pytest.raises(ServeError):
            estimate_spec(engine="columnar")

    def test_resolves_synchronously_without_pool(self):
        async def case():
            s = Scheduler(ServiceConfig(executor_workers=1))
            # no start(): there is no batcher and no pool process yet —
            # the estimate must still answer
            job = s.submit(estimate_spec())
            assert job.terminal
            assert job.state is JobState.DONE
            assert job.result["source"] == "fallback"
            assert job.result["unit_count"] == 2
            assert job.result["predicted_cycles_total"] > 0
            assert job.result["predict_s"] >= 0
            snap = s.metrics.snapshot()
            assert snap["model_estimate_hits"] == 1
            assert snap["units_executed"] == 0
            assert snap["jobs_inflight"] == 0
            assert s.queue_depth == 0
            await s.stop()

        run(case())

    def test_estimate_waits_resolve_immediately(self):
        async def case():
            s = Scheduler(ServiceConfig(executor_workers=1))
            job = s.submit(estimate_spec())
            done = await s.wait(job.job_id, timeout=1)
            assert done.state is JobState.DONE
            await s.stop()

        run(case())

    def test_worker_refuses_estimate_dispatch(self, tmp_path):
        with pytest.raises(ServeError) as info:
            execute_request(
                {
                    "spec": estimate_spec().to_payload(),
                    "cache_dir": str(tmp_path),
                    "record_dir": str(tmp_path),
                }
            )
        assert info.value.code == "internal"


class TestCostAwareAdmission:
    def test_budget_sheds_second_job(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, max_queue_cost=1.0)
            )
            first = s.submit(sim_spec())  # over budget but queue is empty
            assert s.metrics.snapshot()["model_cost_admissions"] == 1
            with pytest.raises(AdmissionError) as info:
                s.submit(sim_spec())
            assert info.value.code == "queue_full"
            snap = s.metrics.snapshot()
            assert snap["model_cost_shed"] == 1
            assert snap["model_queue_cost"] > 0
            assert not first.terminal
            await s.stop()

        run(case())

    def test_cancel_releases_queue_cost(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, max_queue_cost=1e12)
            )
            job = s.submit(sim_spec())
            assert s.metrics.snapshot()["model_queue_cost"] > 0
            s.cancel(job.job_id)
            assert s.metrics.snapshot()["model_queue_cost"] == 0
            # budget restored: a new submit admits again
            s.submit(sim_spec())
            await s.stop()

        run(case())

    def test_drain_releases_queue_cost(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, max_queue_cost=1e12)
            )
            s.submit(sim_spec())
            await s.drain()
            assert s.metrics.snapshot()["model_queue_cost"] == 0
            assert s.stats()["queue_cost"] == 0
            await s.stop()

        run(case())

    def test_prediction_latency_is_recorded(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, max_queue_cost=1e12)
            )
            s.submit(sim_spec())
            s.submit(estimate_spec())
            hist = s.metrics.snapshot()["model_predict_seconds"]
            assert hist["count"] == 2
            await s.stop()

        run(case())

    def test_flat_accounting_unchanged_by_default(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, batch_window_s=5.0)
            )
            s.submit(sim_spec())
            s.submit(sim_spec())
            snap = s.metrics.snapshot()
            assert snap["model_cost_admissions"] == 0
            assert snap["model_queue_cost"] == 0
            # queue entries carry cost 0.0 so ordering is pure
            # (-priority, seq) exactly as before
            assert [entry[1] for entry in s._queue] == [0.0, 0.0]
            await s.stop()

        run(case())

    def test_invalid_budget_rejected(self):
        with pytest.raises(ServeError):
            ServiceConfig(max_queue_cost=0.0)

    def test_cheapest_first_within_priority(self):
        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, max_queue_cost=1e12)
            )
            big = s.submit(sim_spec(count=8))
            small = s.submit(sim_spec(count=1))
            entries = sorted(s._queue)
            assert [e[3].job_id for e in entries] == [
                small.job_id, big.job_id,
            ]
            # priority still dominates cost
            urgent = s.submit(sim_spec(count=8, priority=5))
            entries = sorted(s._queue)
            assert entries[0][3].job_id == urgent.job_id
            await s.stop()

        run(case())


class TestModelBackedEstimate:
    def test_estimate_uses_stored_model(self, tmp_path):
        import numpy as np

        from repro.model import CostModel, ModelStore
        from repro.model.dataset import FEATURE_NAMES, Dataset

        rng = np.random.default_rng(3)
        n = 32
        dataset = Dataset(
            X=rng.random((n, len(FEATURE_NAMES))),
            y=rng.random(n) * 1000 + 100,
            feature_names=tuple(FEATURE_NAMES),
            row_ids=tuple(f"r{i}" for i in range(n)),
            kernels=("spmv",) * n,
        )
        model = CostModel.train(dataset, n_estimators=5)
        store_dir = str(tmp_path / "models")
        key = ModelStore(store_dir).put(model.to_payload())

        async def case():
            s = Scheduler(
                ServiceConfig(executor_workers=1, model_dir=store_dir)
            )
            assert s.stats()["model"] == {"source": "model", "key": key}
            job = s.submit(estimate_spec())
            assert job.state is JobState.DONE
            assert job.result["source"] == "model"
            assert job.result["model_key"] == key
            await s.stop()

        run(case())
