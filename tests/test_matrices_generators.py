"""Tests for the synthetic matrix generators (SuiteSparse substitute)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.matrices import (
    banded,
    blocked,
    circuit,
    diagonal_dominant,
    grid_2d,
    kronecker,
    power_law,
    random_uniform,
)

GENERATORS = [
    ("random_uniform", lambda s: random_uniform(200, 0.01, s)),
    ("banded", lambda s: banded(200, 5, 0.5, s)),
    ("blocked", lambda s: blocked(200, 16, 0.05, 0.5, s)),
    ("power_law", lambda s: power_law(200, 4.0, 2.0, s)),
    ("circuit", lambda s: circuit(200, 2.0, 2, s)),
    ("grid_2d", lambda s: grid_2d(14, s)),
    ("kronecker", lambda s: kronecker(8, 8, s)),
    ("diagonal_dominant", lambda s: diagonal_dominant(200, 8, s)),
]


@pytest.mark.parametrize("name,make", GENERATORS)
def test_generator_is_deterministic(name, make):
    a, b = make(7), make(7)
    assert a.shape == b.shape
    np.testing.assert_array_equal(a.row, b.row)
    np.testing.assert_array_equal(a.col, b.col)
    np.testing.assert_allclose(a.data, b.data)


@pytest.mark.parametrize("name,make", GENERATORS)
def test_generator_seed_changes_pattern(name, make):
    a, b = make(1), make(2)
    same = (
        a.nnz == b.nnz
        and np.array_equal(a.row, b.row)
        and np.array_equal(a.col, b.col)
        # regular structures (grids, diagonals) share the pattern but the
        # seed must still change the values
        and np.allclose(a.data, b.data)
    )
    assert not same, f"{name} ignored its seed"


@pytest.mark.parametrize("name,make", GENERATORS)
def test_generator_is_square_and_nonempty(name, make):
    m = make(3)
    assert m.rows == m.cols
    assert m.nnz > 0
    assert m.nnz <= m.rows * m.cols


@pytest.mark.parametrize("name,make", GENERATORS)
def test_generator_has_no_duplicates(name, make):
    m = make(11)
    keys = m.row * m.cols + m.col
    assert np.unique(keys).size == keys.size


def test_random_uniform_density_is_accurate():
    m = random_uniform(400, 0.01, 3)
    assert m.nnz == int(round(400 * 400 * 0.01))


def test_banded_respects_bandwidth():
    m = banded(300, 7, 0.8, 5)
    assert int(np.abs(m.row - m.col).max()) <= 7


def test_banded_has_full_diagonal():
    m = banded(50, 3, 0.1, 1)
    dense = m.to_dense()
    assert np.all(np.diagonal(dense) != 0.0)


def test_blocked_clusters_into_tiles():
    m = blocked(256, 16, 0.05, 0.6, 9)
    off_diag = m.row // 16 != m.col // 16
    # off-diagonal entries only in active tiles: tile count bounded
    tiles = set(zip((m.row[off_diag] // 16).tolist(), (m.col[off_diag] // 16).tolist()))
    assert len(tiles) <= 256 // 16 * (256 // 16)


def test_power_law_has_heavy_tail():
    m = power_law(2000, 4.0, 2.0, 3)
    per_col = np.bincount(m.col, minlength=2000)
    # hub columns should dominate: top column way above the mean
    assert per_col.max() > 5 * per_col.mean()


def test_circuit_has_dense_rails():
    m = circuit(1000, 2.0, 2, 4)
    per_row = np.bincount(m.row, minlength=1000)
    assert per_row.max() >= 1000 // 20


def test_grid_2d_five_point_degree():
    m = grid_2d(10, 0, connectivity=5)
    per_row = np.bincount(m.row, minlength=100)
    # interior nodes have 5 entries (self + 4 neighbours)
    assert per_row.max() == 5
    assert per_row.min() == 3  # corners


def test_grid_2d_nine_point_degree():
    m = grid_2d(10, 0, connectivity=9)
    per_row = np.bincount(m.row, minlength=100)
    assert per_row.max() == 9


def test_kronecker_size_is_power_of_two():
    m = kronecker(7, 4, 2)
    assert m.rows == 128


def test_diagonal_dominant_diagonals_only():
    m = diagonal_dominant(100, 5, 8)
    offsets = np.unique(m.col - m.row)
    assert offsets.size <= 6 + 1  # requested diagonals + main


@pytest.mark.parametrize(
    "call",
    [
        lambda: random_uniform(0, 0.1, 0),
        lambda: random_uniform(10, 0.0, 0),
        lambda: random_uniform(10, 1.5, 0),
        lambda: banded(10, -1, 0.5, 0),
        lambda: power_law(10, 0.0, 2.0, 0),
        lambda: grid_2d(0, 0),
        lambda: grid_2d(4, 0, connectivity=7),
        lambda: kronecker(0, 4, 0),
        lambda: kronecker(30, 4, 0),
    ],
)
def test_generator_rejects_bad_parameters(call):
    with pytest.raises(FormatError):
        call()
