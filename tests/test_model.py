"""Unit and property tests for the learned cost model (repro.model).

Covers the from-scratch tree ensemble (fit/predict sanity, seeded
determinism), dataset mining (journal lines and cache entries carry
enough context to featurize without rebuilding matrices), the
content-addressed artifact store (bit-identical predictions after
reload, corrupt artifacts rejected — including a hypothesis round-trip
property), and the guided-DSE differential: same ``best_config`` as the
exhaustive sweep while simulating at most half the configurations.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.eval.harness import sweep_spma, sweep_spmv
from repro.eval.runner import RunnerConfig
from repro.matrices.collection import small_collection
from repro.model import (
    FEATURE_NAMES,
    CostModel,
    GradientBoostedTrees,
    JobCostEstimator,
    ModelStore,
    RegressionTree,
    build_dataset,
    feature_vector,
    holdout_split,
    mape,
    mine,
    mine_cache,
    mine_journal,
)

pytestmark = pytest.mark.model


# ----------------------------------------------------------------------
# trees


def _toy(n=160, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 4))
    y = 4.0 * X[:, 0] - 2.0 * X[:, 1] * X[:, 2] + 0.05 * rng.random(n)
    return X, y


class TestRegressionTree:
    def test_fits_a_step_function_exactly(self):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.where(X[:, 0] < 4, 1.0, 5.0)
        tree = RegressionTree.fit(X, y, max_depth=2, min_samples_leaf=1)
        assert np.array_equal(tree.predict(X), y)

    def test_reduces_error_over_the_mean(self):
        X, y = _toy()
        tree = RegressionTree.fit(X, y, max_depth=5)
        sse_tree = float(np.sum((tree.predict(X) - y) ** 2))
        sse_mean = float(np.sum((y - y.mean()) ** 2))
        assert sse_tree < 0.5 * sse_mean

    def test_payload_roundtrip_bit_identical(self):
        X, y = _toy()
        tree = RegressionTree.fit(X, y)
        clone = RegressionTree.from_payload(
            json.loads(json.dumps(tree.to_payload()))
        )
        assert np.array_equal(clone.predict(X), tree.predict(X))

    def test_malformed_payload_rejected(self):
        X, y = _toy(16)
        payload = RegressionTree.fit(X, y, max_depth=2).to_payload()
        ragged = dict(payload, feature=payload["feature"][:-1])
        with pytest.raises(ModelError):
            RegressionTree.from_payload(ragged)
        bad_child = dict(payload, left=[99] * len(payload["left"]))
        with pytest.raises(ModelError):
            RegressionTree.from_payload(bad_child)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ModelError):
            RegressionTree.fit(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(ModelError):
            RegressionTree.fit(np.zeros((4, 3)), np.zeros(5))


class TestGradientBoostedTrees:
    def test_improves_over_single_tree(self):
        X, y = _toy()
        one = RegressionTree.fit(X, y, max_depth=3)
        boosted = GradientBoostedTrees.fit(
            X, y, n_estimators=60, max_depth=3, seed=1
        )
        sse_one = float(np.sum((one.predict(X) - y) ** 2))
        sse_boost = float(np.sum((boosted.predict(X) - y) ** 2))
        assert sse_boost < sse_one

    def test_same_seed_is_bit_deterministic(self):
        X, y = _toy()
        a = GradientBoostedTrees.fit(X, y, n_estimators=25, seed=7)
        b = GradientBoostedTrees.fit(X, y, n_estimators=25, seed=7)
        assert a.to_payload() == b.to_payload()
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_different_seed_differs(self):
        X, y = _toy()
        a = GradientBoostedTrees.fit(X, y, n_estimators=25, seed=7)
        b = GradientBoostedTrees.fit(X, y, n_estimators=25, seed=8)
        assert a.to_payload() != b.to_payload()

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ModelError):
            GradientBoostedTrees.from_payload(
                {"base_score": 0.0, "learning_rate": 0.1, "trees": []}
            )


class TestSplitsAndMetrics:
    def test_holdout_split_deterministic_and_disjoint(self):
        ids = [f"row-{i}" for i in range(64)]
        train, hold = holdout_split(64, ids, 0.25)
        train2, hold2 = holdout_split(64, ids, 0.25)
        assert np.array_equal(train, train2)
        assert np.array_equal(hold, hold2)
        assert set(train.tolist()).isdisjoint(hold.tolist())
        assert len(train) + len(hold) == 64
        assert 0 < len(hold) < 64

    def test_mape_ignores_nonpositive_truths(self):
        truth = np.array([0.0, 100.0])
        pred = np.array([50.0, 110.0])
        assert mape(truth, pred) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# dataset mining (journal + cache carry features and context)


@pytest.fixture(scope="module")
def sweep_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("model-sweeps")
    journal = str(base / "sweep.jsonl")
    cache = str(base / "cache")
    coll = small_collection(count=5, max_n=128)
    cfg = RunnerConfig(workers=1, cache_dir=cache, journal_path=journal)
    sweep_spmv(coll, formats=("csr", "csb"), runner=cfg)
    sweep_spma(coll, runner=cfg)
    return journal, cache


class TestDatasetMining:
    def test_journal_lines_are_self_describing(self, sweep_dirs):
        journal, _ = sweep_dirs
        lines = [
            json.loads(x)
            for x in open(journal, encoding="utf-8")
            if x.strip()
        ]
        assert lines
        for entry in lines:
            assert entry["record"]["features"]["nnz"] > 0
            assert "via" in entry and "machine" in entry
            assert entry["kernel"] in ("spmv", "spma")

    def test_mine_journal_rows(self, sweep_dirs):
        journal, _ = sweep_dirs
        rows = mine_journal(journal)
        # 5 matrices x (2 spmv formats + 1 spma format)
        assert len(rows) == 15
        assert all(r.cycles > 0 for r in rows)
        assert all(r.features.shape == (len(FEATURE_NAMES),) for r in rows)

    def test_cache_mining_matches_journal_mining(self, sweep_dirs):
        journal, cache = sweep_dirs
        from_journal = build_dataset(mine_journal(journal))
        from_cache = build_dataset(mine_cache(cache))
        assert from_journal.row_ids == from_cache.row_ids
        assert np.array_equal(from_journal.X, from_cache.X)
        assert np.array_equal(from_journal.y, from_cache.y)

    def test_duplicate_rows_deduplicate(self, sweep_dirs):
        journal, _ = sweep_dirs
        rows = mine_journal(journal)
        assert len(build_dataset(rows + rows)) == len(rows)

    def test_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(ModelError):
            mine_journal(str(tmp_path / "nope.jsonl"))

    def test_empty_mining_is_an_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ModelError):
            mine(journals=[str(empty)])

    def test_feature_vector_rejects_unknown_kernel_and_format(self):
        structure = {k: 1.0 for k in FEATURE_NAMES}
        via = {"sram_kb": 16, "ports": 2}
        machine = {"l1": {"size_kb": 32, "latency": 2}}
        with pytest.raises(ModelError):
            feature_vector(
                structure, kernel="gemm", fmt="csr", via=via, machine=machine
            )
        with pytest.raises(ModelError):
            feature_vector(
                structure, kernel="spmv", fmt="coo", via=via, machine=machine
            )


# ----------------------------------------------------------------------
# cost model + artifact store


class TestCostModelAndStore:
    @pytest.fixture(scope="class")
    def trained(self, sweep_dirs):
        journal, _ = sweep_dirs
        dataset = mine(journals=[journal])
        return dataset, CostModel.train(dataset, n_estimators=40)

    def test_holdout_metrics_present(self, trained):
        _, model = trained
        assert model.metrics["mape"] == model.metrics["mape"]  # not NaN
        assert set(model.metrics["per_kernel"]) == {"spmv", "spma"}

    def test_store_roundtrip_predictions_bit_identical(
        self, trained, tmp_path
    ):
        dataset, model = trained
        store = ModelStore(str(tmp_path / "models"))
        key = store.put(model.to_payload())
        clone = CostModel.from_payload(store.get(key))
        assert np.array_equal(clone.predict(dataset.X), model.predict(dataset.X))
        assert store.latest_key() == key
        assert store.keys() == [key]

    def test_identical_training_yields_identical_key(self, trained, tmp_path):
        dataset, model = trained
        again = CostModel.train(dataset, n_estimators=40)
        store = ModelStore(str(tmp_path / "models"))
        assert store.put(model.to_payload()) == store.put(again.to_payload())

    def test_corrupt_artifact_rejected_and_deleted(self, trained, tmp_path):
        _, model = trained
        store = ModelStore(str(tmp_path / "models"))
        key = store.put(model.to_payload())
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["feature_names"][0] = "tampered"
        path.write_text(json.dumps(entry))
        with pytest.raises(ModelError):
            store.get(key)
        assert not path.exists()  # rot is deleted, never served

    def test_missing_key_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            ModelStore(str(tmp_path / "models")).get("0" * 64)

    def test_feature_width_mismatch_rejected(self, trained):
        _, model = trained
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 3)))

    def test_estimator_falls_back_without_model(self, tmp_path):
        est = JobCostEstimator.load(str(tmp_path / "does-not-exist"))
        assert est.source == "fallback"
        out = est.estimate_workload(
            kernel="spmv", count=2, seed=2021, min_n=64, max_n=96,
            formats=("csr",), sram_kb=16, ports=2,
        )
        assert out["source"] == "fallback"
        assert out["predicted_cycles_total"] > 0
        # deterministic: same request, same answer
        again = est.estimate_workload(
            kernel="spmv", count=2, seed=2021, min_n=64, max_n=96,
            formats=("csr",), sram_kb=16, ports=2,
        )
        assert again == out


# hypothesis property: the artifact serialize/load round trip is lossless
# for arbitrary (well-formed) training data, and predictions after reload
# are bit-identical on unseen inputs.
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=8, max_value=48),
    k=st.integers(min_value=1, max_value=5),
)
def test_artifact_roundtrip_property(seed, n, k):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, k))
    y = rng.random(n) * 10 + 0.1
    model = GradientBoostedTrees.fit(
        X, y, n_estimators=5, max_depth=3, seed=seed
    )
    wire = json.dumps(model.to_payload(), sort_keys=True)
    clone = GradientBoostedTrees.from_payload(json.loads(wire))
    probe = rng.standard_normal((16, k))
    assert np.array_equal(clone.predict(probe), model.predict(probe))
    # and a second dump is byte-stable (content-addressing relies on it)
    assert json.dumps(clone.to_payload(), sort_keys=True) == wire


# ----------------------------------------------------------------------
# guided DSE differential


class TestGuidedDse:
    def test_guided_matches_exhaustive_best_config(self, tmp_path):
        from repro.eval.dse import run_dse

        journal = str(tmp_path / "dse.jsonl")
        # deterministic end to end: this workload/seed/tree-count triple
        # is pinned, so ranking success is reproducible, not luck — the
        # full-size differential lives in benchmarks/bench_model.py
        coll = small_collection(count=4, max_n=160)
        exhaustive = run_dse(
            coll,
            runner=RunnerConfig(workers=1, journal_path=journal),
            spmm_max_n=160,
        )
        model = CostModel.train(mine(journals=[journal]), n_estimators=60)
        guided = run_dse(
            coll, strategy="guided", model=model, spmm_max_n=160
        )
        assert guided.strategy == "guided"
        assert guided.simulated_fraction() <= 0.5
        for kernel in exhaustive.cycles:
            assert guided.best_config(kernel) == exhaustive.best_config(kernel)
            for name, cycles in guided.cycles[kernel].items():
                # survivors are simulated, not predicted: bit-identical
                assert cycles == exhaustive.cycles[kernel][name]
            assert set(guided.predicted[kernel]) == set(
                exhaustive.cycles[kernel]
            )

    def test_unknown_strategy_rejected(self):
        from repro.eval.dse import run_dse

        with pytest.raises(ValueError):
            run_dse(small_collection(count=1), strategy="bogus")

    def test_bad_keep_rejected(self):
        from repro.eval.dse import run_dse

        with pytest.raises(ValueError):
            run_dse(
                small_collection(count=1), strategy="guided", guided_keep=0.0
            )
