"""Tests for the VIA ISA definitions, FIVU timing and execution engine."""

import numpy as np
import pytest

from repro.errors import ISAError
from repro.sim import Core, MachineConfig
from repro.via import (
    Dest,
    Mode,
    Opcode,
    ViaConfig,
    ViaDevice,
    ViaInstruction,
    fivu_timing,
)


class TestInstructionValidation:
    def test_load_requires_matching_operands(self):
        with pytest.raises(ISAError):
            ViaInstruction(Opcode.VIDXLOAD, mode=Mode.DIRECT)
        with pytest.raises(ISAError):
            ViaInstruction(
                Opcode.VIDXLOAD,
                mode=Mode.DIRECT,
                data=np.zeros(2),
                idx=np.zeros(3, dtype=np.int64),
            )

    def test_moded_opcodes_require_mode(self):
        with pytest.raises(ISAError):
            ViaInstruction(
                Opcode.VIDXADD, data=np.zeros(2), idx=np.zeros(2, dtype=np.int64)
            )

    def test_unmoded_opcodes_reject_mode(self):
        with pytest.raises(ISAError):
            ViaInstruction(Opcode.VIDXCOUNT, mode=Mode.DIRECT)

    def test_blkmult_constraints(self):
        data = np.ones(2)
        idx = np.zeros(2, dtype=np.int64)
        with pytest.raises(ISAError):  # CAM mode invalid
            ViaInstruction(
                Opcode.VIDXBLKMULT, mode=Mode.CAM, data=data, idx=idx,
                dest=Dest.SSPM, idx_offset=4,
            )
        with pytest.raises(ISAError):  # must write to SSPM
            ViaInstruction(
                Opcode.VIDXBLKMULT, mode=Mode.DIRECT, data=data, idx=idx,
                dest=Dest.VRF, idx_offset=4,
            )
        with pytest.raises(ISAError):  # idx_offset required
            ViaInstruction(
                Opcode.VIDXBLKMULT, mode=Mode.DIRECT, data=data, idx=idx,
                dest=Dest.SSPM,
            )

    def test_mov_needs_count(self):
        with pytest.raises(ISAError):
            ViaInstruction(Opcode.VIDXMOV, count=0)

    def test_count_takes_no_vectors(self):
        with pytest.raises(ISAError):
            ViaInstruction(
                Opcode.VIDXCOUNT, data=np.zeros(1), idx=np.zeros(1, dtype=np.int64)
            )

    def test_segment_only_on_clear(self):
        with pytest.raises(ISAError):
            ViaInstruction(Opcode.VIDXCOUNT, segment=(0, 4))

    def test_mnemonics(self):
        i = ViaInstruction.load([1.0], [0], Mode.CAM)
        assert i.mnemonic == "vidxload.c"
        assert ViaInstruction.count_().mnemonic == "vidxcount"

    def test_arith_constructor_rejects_non_arith(self):
        with pytest.raises(ISAError):
            ViaInstruction.arith(Opcode.VIDXLOAD, [1.0], [0], Mode.DIRECT)


class TestFivuTiming:
    def test_load_is_single_pass(self):
        t = fivu_timing(ViaInstruction.load(np.ones(4), np.arange(4)))
        assert t.sspm_elements == 4
        assert t.port_passes == 1
        assert t.cam_searches == 0

    def test_cam_load_counts_searches(self):
        t = fivu_timing(ViaInstruction.load(np.ones(4), np.arange(4), Mode.CAM))
        assert t.cam_searches == 4

    def test_sspm_dest_doubles_elements(self):
        vrf = fivu_timing(
            ViaInstruction.arith(Opcode.VIDXADD, np.ones(4), np.arange(4), Mode.DIRECT)
        )
        sspm = fivu_timing(
            ViaInstruction.arith(
                Opcode.VIDXADD, np.ones(4), np.arange(4), Mode.DIRECT, dest=Dest.SSPM
            )
        )
        assert sspm.sspm_elements == 2 * vrf.sspm_elements
        assert sspm.port_passes == 2

    def test_blkmult_two_passes(self):
        t = fivu_timing(ViaInstruction.blkmult(np.ones(4), np.arange(4), 8, 0))
        assert t.port_passes == 2
        assert t.sspm_elements == 8

    def test_port_cycles_scale_with_ports(self):
        instr = ViaInstruction.load(np.ones(8), np.arange(8))
        t = fivu_timing(instr)
        assert t.port_cycles(ViaConfig(16, 2)) > t.port_cycles(ViaConfig(16, 4))

    def test_scalar_ops_have_no_port_cycles(self):
        t = fivu_timing(ViaInstruction.count_())
        assert t.port_cycles(ViaConfig(16, 2)) == 0


class TestEngineFunctional:
    def setup_method(self):
        self.dev = ViaDevice(ViaConfig(16, 2))

    def test_load_read_roundtrip_direct(self):
        self.dev.vidxload([1.0, 2.0, 3.0], [10, 20, 30])
        out = self.dev.vidxadd(np.zeros(3), [10, 20, 30])
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_vrf_dest_semantics(self):
        self.dev.vidxload([5.0], [0])
        assert self.dev.vidxadd([2.0], [0])[0] == 7.0
        assert self.dev.vidxsub([2.0], [0])[0] == -3.0  # data - sspm
        assert self.dev.vidxmult([2.0], [0])[0] == 10.0

    def test_sspm_dest_accumulates(self):
        self.dev.vidxadd([1.0], [4], dest=Dest.SSPM)
        self.dev.vidxadd([2.0], [4], dest=Dest.SSPM)
        out = self.dev.vidxadd([0.0], [4])
        assert out[0] == 3.0

    def test_sspm_dest_offset_moves_output(self):
        self.dev.vidxadd([1.5], [0], dest=Dest.SSPM, offset=100)
        assert self.dev.vidxadd([0.0], [100])[0] == 1.5

    def test_cam_mode_returns_match_mask(self):
        self.dev.vidxload([1.0, 2.0], [111, 222], Mode.CAM)
        vals, matched = self.dev.vidxmult([10.0, 10.0], [222, 333], mode=Mode.CAM)
        np.testing.assert_allclose(vals, [20.0, 0.0])
        np.testing.assert_array_equal(matched, [True, False])

    def test_count_and_drain(self):
        self.dev.vidxload([1.0, 2.0, 3.0], [7, 8, 9], Mode.CAM)
        assert self.dev.vidxcount() == 3
        idx, vals = self.dev.drain()
        np.testing.assert_array_equal(idx, [7, 8, 9])
        np.testing.assert_allclose(vals, [1.0, 2.0, 3.0])

    def test_drain_empty(self):
        idx, vals = self.dev.drain()
        assert idx.size == 0 and vals.size == 0

    def test_clear_resets(self):
        self.dev.vidxload([1.0], [5])
        self.dev.vidxclear()
        assert self.dev.vidxadd([0.0], [5])[0] == 0.0

    def test_blkmult_semantics(self):
        # vector chunk at cols 0..3, accumulate rows at offset 8
        self.dev.vidxload([1.0, 2.0, 3.0, 4.0], [0, 1, 2, 3])
        # entries (row=0,col=1)=10 and (row=1,col=3)=100 with 2-bit col field
        idx = np.array([(0 << 2) | 1, (1 << 2) | 3])
        self.dev.vidxblkmult([10.0, 100.0], idx, idx_offset=2, offset=8)
        out = self.dev.vidxadd([0.0, 0.0], [8, 9])
        np.testing.assert_allclose(out, [20.0, 400.0])  # 10*2, 100*4

    def test_chunking_splits_long_operands(self):
        n = 3 * self.dev.vl + 1
        self.dev.vidxload(np.ones(n), np.arange(n))
        assert self.dev.instructions_executed == 4

    def test_oversize_instruction_rejected(self):
        with pytest.raises(ISAError):
            self.dev.execute(
                ViaInstruction.load(np.ones(100), np.arange(100))
            )

    def test_mismatched_helper_operands(self):
        with pytest.raises(ISAError):
            self.dev.vidxload(np.ones(3), np.arange(4))


class TestEngineTiming:
    def test_attached_device_reports_to_core(self):
        dev = ViaDevice(ViaConfig(16, 2))
        core = Core(MachineConfig(), via=dev)
        dev.vidxload(np.ones(16), np.arange(16))
        assert core.counters.via_instructions == 4  # 16 elems / VL=4
        assert core.counters.sspm_accesses == 16
        res = core.finalize("via")
        assert res.breakdown.sspm_cycles > 0

    def test_more_ports_fewer_sspm_cycles(self):
        def run(ports):
            dev = ViaDevice(ViaConfig(16, ports))
            core = Core(MachineConfig().with_lanes(8), via=dev)
            dev.vidxblkmult(
                np.ones(512), np.arange(512) % 64, idx_offset=6, offset=0
            )
            return core.finalize("p").breakdown.sspm_cycles

        assert run(2) > run(4)

    def test_leakage_and_area_exposed(self):
        dev = ViaDevice(ViaConfig(16, 2))
        assert dev.leakage_mw == pytest.approx(0.50)
        assert dev.area_mm2 == pytest.approx(0.515)
