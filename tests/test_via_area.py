"""Tests for the Table II area/leakage model and VIA energy helpers."""

import pytest

from repro.via import (
    PUBLISHED_SYNTHESIS,
    SSPM,
    ViaConfig,
    all_configs,
    area_mm2,
    chip_area_overhead,
    core_area_overhead,
    dse_configs,
    leakage_mw,
    table2,
    via_energy,
)
from repro.via.energy import cam_search_energy_pj, sram_access_energy_pj


class TestPublishedAnchors:
    """The model must reproduce the paper's synthesis points exactly."""

    @pytest.mark.parametrize(
        "kb,ports,area,leak",
        [(kb, p, a, l) for (kb, p), (a, l) in PUBLISHED_SYNTHESIS.items()],
    )
    def test_anchor_exact(self, kb, ports, area, leak):
        cfg = ViaConfig(kb, ports)
        assert area_mm2(cfg) == pytest.approx(area)
        assert leakage_mw(cfg) == pytest.approx(leak)

    def test_table2_headline_numbers(self):
        # the paper's flagship claims: 16_2p is 0.515 mm^2 and 0.5 mW
        cfg = ViaConfig(16, 2)
        assert area_mm2(cfg) == pytest.approx(0.515)
        assert leakage_mw(cfg) == pytest.approx(0.50)


class TestModelShape:
    def test_area_monotone_in_size(self):
        assert area_mm2(ViaConfig(16, 2)) > area_mm2(ViaConfig(8, 2))
        assert area_mm2(ViaConfig(8, 2)) > area_mm2(ViaConfig(4, 2))

    def test_area_monotone_in_ports(self):
        for kb in (4, 8, 16):
            assert area_mm2(ViaConfig(kb, 4)) > area_mm2(ViaConfig(kb, 2))

    def test_interpolated_config_is_reasonable(self):
        # 32 KB, 2 ports: extrapolation must land above 16_2p and scale
        # roughly linearly-plus in capacity
        a = area_mm2(ViaConfig(32, 2))
        assert 2 * 0.515 * 0.7 < a < 2 * 0.515 * 1.8

    def test_core_chip_overheads_match_paper(self):
        # paper: 16_4p ~5% of a Haswell core / ~1.5% of the chip;
        # 16_2p ~3% / ~1%
        assert core_area_overhead(ViaConfig(16, 4)) == pytest.approx(0.05, abs=0.01)
        assert core_area_overhead(ViaConfig(16, 2)) == pytest.approx(0.03, abs=0.01)
        assert chip_area_overhead(ViaConfig(16, 4)) == pytest.approx(0.015, abs=0.004)
        assert chip_area_overhead(ViaConfig(16, 2)) == pytest.approx(0.01, abs=0.003)

    def test_table2_renders_all_configs(self):
        text = table2()
        for cfg in all_configs():
            assert cfg.name in text

    def test_dse_configs_are_the_four_from_fig9(self):
        names = {c.name for c in dse_configs()}
        assert names == {"4_2p", "4_4p", "16_2p", "16_4p"}


class TestViaEnergy:
    def test_sram_energy_scales_with_capacity(self):
        assert sram_access_energy_pj(ViaConfig(16, 2)) > sram_access_energy_pj(
            ViaConfig(4, 2)
        )

    def test_cam_energy_scales_with_active_banks(self):
        cfg = ViaConfig(16, 2)
        assert cam_search_energy_pj(cfg, 8) > cam_search_energy_pj(cfg, 1)

    def test_cam_energy_capped_at_bank_count(self):
        cfg = ViaConfig(4, 2)
        assert cam_search_energy_pj(cfg, 10**6) == cam_search_energy_pj(
            cfg, cfg.cam_banks
        )

    def test_via_energy_from_counters(self):
        s = SSPM(ViaConfig(16, 2))
        s.cam_write(range(32), [1.0] * 32)
        s.dm_write(range(16), [1.0] * 16)
        e = via_energy(s.config, s.counters)
        assert e.sram_pj > 0 and e.cam_pj > 0
        assert e.total_pj == pytest.approx(e.sram_pj + e.cam_pj)

    def test_gated_banks_burn_less(self):
        # few tracked entries -> fewer bank activations per search
        small, big = SSPM(ViaConfig(16, 2)), SSPM(ViaConfig(16, 2))
        small.cam_write(range(4), [1.0] * 4)
        big.cam_write(range(256), [1.0] * 256)
        small.counters.bank_activations = 0
        big.counters.bank_activations = 0
        small.cam_read(range(4))
        big.cam_read(range(4))
        e_small = via_energy(small.config, small.counters)
        e_big = via_energy(big.config, big.counters)
        assert e_big.cam_pj > e_small.cam_pj
