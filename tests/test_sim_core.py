"""Unit tests for the core cycle model and address space."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim import Core, MachineConfig, table1


class TestAddressSpace:
    def test_arrays_are_line_aligned_and_disjoint(self):
        core = Core()
        a = core.alloc("a", 10, 8)
        b = core.alloc("b", 10, 8)
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.base + a.nbytes

    def test_addr_computation(self):
        core = Core()
        a = core.alloc("a", 100, 8)
        np.testing.assert_array_equal(
            a.addr([0, 1, 2]), [a.base, a.base + 8, a.base + 16]
        )

    def test_addr_range(self):
        core = Core()
        a = core.alloc("a", 100, 4)
        base, nbytes = a.addr_range(10, 5)
        assert base == a.base + 40 and nbytes == 20

    def test_lookup_by_name(self):
        core = Core()
        a = core.alloc("x", 4)
        assert core.mem["x"] is a

    def test_bad_alloc_rejected(self):
        core = Core()
        with pytest.raises(SimulationError):
            core.alloc("bad", -1)
        with pytest.raises(SimulationError):
            core.alloc("bad", 4, 0)


class TestCycleModel:
    def test_empty_kernel_is_zero_cycles(self):
        res = Core().finalize("empty")
        assert res.cycles == 0.0

    def test_scalar_ops_bound_by_issue_width(self):
        core = Core()
        core.scalar_ops(800)
        res = core.finalize("scalar")
        assert res.breakdown.issue_cycles == pytest.approx(
            800 / core.machine.issue_width
        )

    def test_vector_ops_bound_by_vfu(self):
        core = Core()
        core.vector_op("fma", 1000)
        res = core.finalize("vec")
        assert res.breakdown.vfu_cycles == pytest.approx(1000)
        assert res.cycles >= 1000

    def test_unknown_vector_kind_rejected(self):
        with pytest.raises(SimulationError):
            Core().vector_op("frobnicate")

    def test_gather_costs_fixed_serial_latency(self):
        core = Core()
        x = core.alloc("x", 4096)
        idx = np.arange(64)
        core.gather(x, idx)
        res = core.finalize("gather")
        n_instr = 64 // core.machine.vl
        expected = n_instr * core.machine.gather_base_latency
        assert res.breakdown.gather_serial_cycles == pytest.approx(expected)
        assert res.cycles >= expected

    def test_gather_dependent_latency_classified(self):
        core = Core()
        x = core.alloc("x", 100000)
        core.gather(x, np.arange(0, 100000, 997))  # cold, sparse: misses
        assert core.counters.dependent_miss_latency > 0
        assert core.counters.stream_miss_latency == 0

    def test_stream_misses_classified_as_stream(self):
        core = Core()
        x = core.alloc("x", 10000)
        core.load_stream(x, 0, 10000)
        assert core.counters.stream_miss_latency > 0
        assert core.counters.dependent_miss_latency == 0

    def test_stream_load_is_cheaper_than_gather_of_same_data(self):
        n = 8192
        core_a = Core()
        x = core_a.alloc("x", n)
        core_a.load_stream(x, 0, n)
        stream_cycles = core_a.finalize("s").cycles

        core_b = Core()
        y = core_b.alloc("y", n)
        core_b.gather(y, np.arange(n))
        gather_cycles = core_b.finalize("g").cycles
        assert gather_cycles > stream_cycles

    def test_dram_occupancy_bounds_streaming(self):
        core = Core()
        x = core.alloc("x", 1_000_00)
        core.load_stream(x, 0, 1_000_00)
        res = core.finalize("stream")
        assert res.breakdown.dram_occupancy_cycles > 0
        assert res.dram_traffic_bytes >= 1_000_00 * 8

    def test_second_pass_hits_cache(self):
        core = Core()
        x = core.alloc("x", 1000)
        core.load_stream(x, 0, 1000)
        fills_first = core.counters.dram_fills
        core.load_stream(x, 0, 1000)
        assert core.counters.dram_fills == fills_first

    def test_scalar_load_store_roundtrip(self):
        core = Core()
        x = core.alloc("x", 64)
        core.scalar_store(x, [0, 1, 2])
        core.scalar_load(x, [0, 1, 2])
        assert core.counters.scalar_uops == 6
        assert core.counters.l1_hits >= 1

    def test_record_via_op_accumulates(self):
        core = Core()
        core.record_via_op(sspm_elements=16, cam_searches=4, port_cycles=8)
        assert core.counters.via_instructions == 1
        assert core.counters.sspm_accesses == 16
        assert core.counters.cam_searches == 4
        assert core.counters.sspm_busy_cycles > 8  # + commit overhead

    def test_energy_accumulates(self):
        core = Core()
        core.vector_op("fma", 10)
        x = core.alloc("x", 1000)
        core.load_stream(x, 0, 1000)
        res = core.finalize("e")
        assert res.energy_pj > 0

    def test_result_speedup_helpers(self):
        core_a = Core()
        core_a.vector_op("fma", 1000)
        fast = core_a.finalize("fast")
        core_b = Core()
        core_b.vector_op("fma", 4000)
        slow = core_b.finalize("slow")
        assert fast.speedup_over(slow) == pytest.approx(4.0, rel=0.01)
        assert slow.speedup_over(fast) == pytest.approx(0.25, rel=0.01)

    def test_breakdown_bottleneck_name(self):
        core = Core()
        core.vector_op("fma", 100)
        res = core.finalize("b")
        assert res.breakdown.bottleneck in (
            "issue",
            "vfu",
            "gather",
            "dram",
            "sspm",
            "commit",
        )

    def test_summary_is_readable(self):
        core = Core()
        core.scalar_ops(10)
        s = core.finalize("demo").summary()
        assert "demo" in s and "cycles" in s


class TestMachineConfig:
    def test_table1_renders(self):
        text = table1()
        assert "Table I" in text
        assert "L1D" in text and "DRAM" in text

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(clock_ghz=0)
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigError):
            MachineConfig(vector_lanes=0)
        with pytest.raises(ConfigError):
            MachineConfig(dram_bw_bytes_per_cycle=0)

    def test_with_lanes(self):
        m = MachineConfig().with_lanes(8)
        assert m.vl == 8

    def test_cycles_to_seconds(self):
        m = MachineConfig(clock_ghz=2.0)
        assert m.cycles_to_seconds(2e9) == pytest.approx(1.0)
