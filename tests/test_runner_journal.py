"""Tests for the run journal: append semantics, flush ordering, failure
modes, and the corrupt-cache telemetry it carries.

The journal is the runner's crash-recovery record — ``resume=`` replays it
— so these tests pin down the properties resume depends on: every line is
flushed the moment its unit completes (even when the very next statement
raises), journals append across resumed runs rather than truncating, a
torn tail is tolerated, and an unwritable journal fails the sweep loudly
up front instead of silently losing telemetry.
"""

import json
from pathlib import Path

import pytest

from repro.errors import SweepError
from repro.eval import ResultCache, RunnerConfig, WorkUnit, run_units, spmv_units
from repro.eval import units as units_mod
from repro.eval.runner import _Journal, _load_resume_map, code_version
from repro.eval.units import unit_cache_key
from repro.matrices import MatrixSpec, small_collection

pytestmark = pytest.mark.smoke


def _boom(unit: WorkUnit):
    raise RuntimeError(f"injected kernel fault for {unit.spec.name}")


@pytest.fixture(autouse=True)
def _boom_kind():
    units_mod.UNIT_KINDS["boom"] = _boom
    yield
    units_mod.UNIT_KINDS.pop("boom", None)


def _lines(path) -> list:
    return [json.loads(l) for l in Path(path).read_text().splitlines()]


class TestAppendSemantics:
    def test_journal_appends_across_resumed_runs(self, tmp_path):
        coll = small_collection(3, seed=41, max_n=128)
        units = spmv_units(coll, formats=("csr",))
        journal = str(tmp_path / "j.jsonl")

        run_units(units, RunnerConfig(journal_path=journal))
        run_units(units, RunnerConfig(journal_path=journal, resume=journal))

        lines = _lines(journal)
        assert [l["status"] for l in lines] == ["ok"] * 3 + ["resumed"] * 3
        # the resumed lines re-assert the full record, so a third resume
        # can be served from the *latest* line for each key
        assert all("record" in l and "key" in l for l in lines)
        third = run_units(
            units, RunnerConfig(journal_path=journal, resume=journal)
        )
        assert third.counters.units_resumed == 3

    def test_completed_lines_carry_resume_payload(self, tmp_path):
        coll = small_collection(2, seed=43, max_n=128)
        units = spmv_units(coll, formats=("csr",))
        journal = str(tmp_path / "j.jsonl")
        result = run_units(units, RunnerConfig(journal_path=journal))
        version = code_version()
        for line, unit, record in zip(_lines(journal), units, result.records):
            assert line["key"] == unit_cache_key(unit, version)
            assert line["record"] == record.to_dict()
            assert line["wall_s"] >= 0 and line["worker"] > 0


class TestFlushOrdering:
    def test_failure_line_is_flushed_before_strict_mode_raises(
        self, tmp_path
    ):
        """capture_errors=False raises on the failing unit — but the
        journal must already hold every line up to and including it."""
        coll = small_collection(2, seed=45, max_n=128)
        good = spmv_units(coll, formats=("csr",))
        bad = WorkUnit("boom", MatrixSpec("poison", "random", 64, 1, {}))
        journal = str(tmp_path / "j.jsonl")
        with pytest.raises(SweepError, match="injected kernel fault"):
            run_units(
                [good[0], bad, good[1]],
                RunnerConfig(journal_path=journal, capture_errors=False),
            )
        lines = _lines(journal)
        assert [l["status"] for l in lines] == ["ok", "failed"]
        assert "injected kernel fault" in lines[1]["error"]

    def test_every_line_is_durable_without_close(self, tmp_path):
        """Lines are readable while the journal is still open — flush
        happens per write, not at close (the crash-safety property)."""
        journal = _Journal(str(tmp_path / "j.jsonl"))
        journal.write(status="ok", unit=0)
        assert _lines(tmp_path / "j.jsonl") == [{"status": "ok", "unit": 0}]
        journal.write(status="failed", unit=1)
        assert len(_lines(tmp_path / "j.jsonl")) == 2
        journal.close()

    def test_close_is_idempotent(self, tmp_path):
        journal = _Journal(str(tmp_path / "j.jsonl"))
        journal.close()
        journal.close()
        disabled = _Journal(None)
        disabled.write(status="ok")  # no-op, no file
        disabled.close()


class TestUnwritableJournal:
    def test_parent_is_a_file_raises_sweep_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SweepError, match="not writable"):
            _Journal(str(blocker / "j.jsonl"))

    def test_journal_path_is_a_directory_raises_sweep_error(self, tmp_path):
        target = tmp_path / "is-a-dir"
        target.mkdir()
        with pytest.raises(SweepError, match="not writable"):
            _Journal(str(target))

    def test_run_units_fails_fast_before_computing_anything(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        coll = small_collection(1, seed=47, max_n=96)
        with pytest.raises(SweepError, match="not writable"):
            run_units(
                spmv_units(coll, formats=("csr",)),
                RunnerConfig(journal_path=str(blocker / "j.jsonl")),
            )


class TestResumeMap:
    def test_missing_resume_journal_raises(self, tmp_path):
        with pytest.raises(SweepError, match="does not exist"):
            _load_resume_map(str(tmp_path / "nope.jsonl"))

    def test_torn_tail_and_garbage_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = {"key": "k1", "status": "ok", "record": {"name": "x"}}
        path.write_text(
            json.dumps(good) + "\n"
            + "not json at all\n"
            + "[1, 2, 3]\n"  # json, but not an object
            + json.dumps({"status": "ok"}) + "\n"  # no key
            + json.dumps(good)[: len(json.dumps(good)) // 2]  # torn tail
        )
        entries = _load_resume_map(str(path))
        assert list(entries) == ["k1"]

    def test_failed_lines_are_never_resumed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"key": "k1", "status": "failed", "error": "x"}) + "\n"
            + json.dumps({"key": "k2", "status": "ok", "record": None}) + "\n"
        )
        entries = _load_resume_map(str(path))
        assert list(entries) == ["k2"]

    def test_latest_line_wins_per_key(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"key": "k", "status": "ok", "record": {"v": 1}}) + "\n"
            + json.dumps({"key": "k", "status": "ok", "record": {"v": 2}}) + "\n"
        )
        assert _load_resume_map(str(path))["k"]["record"] == {"v": 2}

    def test_stale_journal_from_other_units_resumes_nothing(self, tmp_path):
        """Keys embed the unit hash, so a journal from different units (or
        different code) silently yields zero resume hits — never wrong
        records."""
        coll = small_collection(2, seed=49, max_n=128)
        units_a = spmv_units(coll, formats=("csr",))
        units_b = spmv_units(coll, formats=("csb",))
        journal = str(tmp_path / "j.jsonl")
        run_units(units_a, RunnerConfig(journal_path=journal))
        crossed = run_units(units_b, RunnerConfig(resume=journal))
        assert crossed.counters.units_resumed == 0
        assert crossed.counters.units_ok == len(units_b)


class TestCorruptCacheTelemetry:
    def test_corrupt_entry_is_journaled_and_counted(self, tmp_path):
        coll = small_collection(2, seed=51, max_n=128)
        units = spmv_units(coll, formats=("csr",))
        cache_dir = str(tmp_path / "c")
        run_units(units, RunnerConfig(cache_dir=cache_dir))

        # garble one cached entry on disk
        key = unit_cache_key(units[0], code_version())
        entry_path = ResultCache(cache_dir)._path(key)
        entry_path.write_text("{ definitely not valid json")

        journal = str(tmp_path / "j.jsonl")
        result = run_units(
            units, RunnerConfig(cache_dir=cache_dir, journal_path=journal)
        )
        assert result.counters.units_corrupt == 1
        assert result.counters.cache_corrupt == 1
        assert result.counters.cache_hits == 1
        assert result.counters.units_ok == 1  # recomputed, never served
        by_unit = {l["unit"]: l for l in _lines(journal)}
        assert by_unit[0]["cache"] == "corrupt"
        assert by_unit[0]["status"] == "ok"
        assert by_unit[1]["cache"] == "hit"

    def test_resume_takes_precedence_over_cache(self, tmp_path):
        coll = small_collection(1, seed=53, max_n=96)
        units = spmv_units(coll, formats=("csr",))
        cache_dir = str(tmp_path / "c")
        journal = str(tmp_path / "j.jsonl")
        run_units(
            units, RunnerConfig(cache_dir=cache_dir, journal_path=journal)
        )
        again = run_units(
            units, RunnerConfig(cache_dir=cache_dir, resume=journal)
        )
        assert again.counters.units_resumed == 1
        assert again.counters.cache_hits == 0  # never consulted
