"""Fault-injection tests for the op-stream recording store.

Mirrors ``test_runner_fault.py`` for the artifact layer: a truncated,
garbled, tampered, schema-stale, or mis-filed recording must be detected
by the integrity checks, dropped, and transparently re-recorded — the
sweep's records stay bit-identical and the store heals itself.  The v2
columnar artifacts add a second defense line: a mutation that *re-signs*
the checksum (so integrity passes) must still be rejected by the
structural validation in :class:`repro.sim.columnar.ColumnarOps` — ragged
column lengths and out-of-bounds index-pool slices raise a structured
:class:`~repro.errors.RecordingError` instead of mispricing.  Also pins
the key discipline: SSPM port counts and pure-pricing machine knobs stay
out of :func:`recording_key`, while the IR schema version, the artifact
part, and the SSPM capacity feed it.
"""

import json

import numpy as np
import pytest

from repro.errors import RecordingError
from repro.eval import RunnerConfig, run_units
from repro.eval import recordings as recordings_mod
from repro.eval.recordings import RecordingStore, recording_key
from repro.eval.runner import code_version
from repro.eval.units import record_units, replay_units, spmv_units
from repro.matrices import small_collection
from repro.sim.columnar import KIND_IDS
from repro.sim.ops import _checksum, load_recordings, save_recordings
from repro.via.config import VIA_4_2P, VIA_16_2P, VIA_16_4P

pytestmark = pytest.mark.smoke


@pytest.fixture
def warmed(tmp_path):
    coll = small_collection(2, seed=41, max_n=128)
    direct = spmv_units(coll, formats=("csr",))
    rdir = str(tmp_path / "rec")
    recs = record_units(direct, record_dir=rdir)
    baseline = run_units(recs, RunnerConfig())
    store = RecordingStore(rdir)
    path = store._path(recording_key(recs[0], code_version(), part="via"))
    assert path.exists()
    return direct, rdir, baseline, path


def _rewrite(path, *, schema=None, drop_checksum_for=None, key=None):
    """Re-save an artifact with a targeted inconsistency injected."""
    if key is not None:
        recordings, extra = load_recordings(path)
        extra = dict(extra)
        extra["key"] = key
        save_recordings(path, recordings, extra_meta=extra)
        return
    with np.load(path, allow_pickle=False) as npz:
        meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
        arrays = {k: npz[k] for k in npz.files if k != "meta"}
    if schema is not None:
        meta["schema"] = schema
    if drop_checksum_for is not None:
        # mutate the payload without refreshing the checksum
        entry = next(iter(meta["entries"].values()))
        entry["priced"]["counters"][drop_checksum_for] += 1
    np.savez_compressed(
        path,
        meta=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def _rewrite_signed(path, mutate):
    """Re-save with a mutation and a *refreshed* checksum.

    The artifact then passes the integrity check, so only the columnar
    structural validation stands between the mutation and a replay.
    """
    with np.load(path, allow_pickle=False) as npz:
        meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
        arrays = {k: npz[k] for k in npz.files if k != "meta"}
    meta.pop("checksum", None)
    mutate(meta, arrays)
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    meta["checksum"] = _checksum(meta_blob, arrays)
    np.savez_compressed(
        path,
        meta=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def _first_prefix(meta):
    return next(iter(meta["entries"].values()))["ops"]["prefix"]


class TestArtifactRot:
    def _assert_selfhealed(self, direct, rdir, baseline):
        replays = replay_units(direct, record_dir=rdir)
        healed = run_units(replays, RunnerConfig())
        assert healed.records == baseline.records
        # the store is whole again: a second pass is pure replay and agrees
        again = run_units(replays, RunnerConfig())
        assert again.records == baseline.records
        store = RecordingStore(rdir)
        code = code_version()
        for unit in replays:
            assert store.get(recording_key(unit, code, part="via")) is not None
            assert store.get(recording_key(unit, code, part="base")) is not None

    def test_truncated_artifact_is_rerecorded(self, warmed):
        direct, rdir, baseline, path = warmed
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_selfhealed(direct, rdir, baseline)

    def test_garbage_artifact_is_rerecorded(self, warmed):
        direct, rdir, baseline, path = warmed
        path.write_bytes(b"this is not a zip archive")
        self._assert_selfhealed(direct, rdir, baseline)

    def test_tampered_payload_fails_checksum(self, warmed):
        direct, rdir, baseline, path = warmed
        _rewrite(path, drop_checksum_for="via_instructions")
        self._assert_selfhealed(direct, rdir, baseline)

    def test_wrong_schema_version_is_dropped(self, warmed):
        direct, rdir, baseline, path = warmed
        _rewrite(path, schema=999)
        self._assert_selfhealed(direct, rdir, baseline)

    def test_mis_filed_key_is_detected(self, warmed):
        direct, rdir, baseline, path = warmed
        _rewrite(path, key="f" * 64)
        self._assert_selfhealed(direct, rdir, baseline)
        assert not path.exists() or path.stat().st_size > 0

    def test_every_artifact_corrupt_at_once(self, warmed):
        direct, rdir, baseline, _ = warmed
        for npz in RecordingStore(rdir).root.rglob("*.npz"):
            npz.write_bytes(b"\x00" * 64)
        self._assert_selfhealed(direct, rdir, baseline)

    def test_truncated_column_is_rejected_and_healed(self, warmed):
        """A ragged op column (one array shorter than its siblings) must
        raise a structured error from the columnar loader, turn into a
        store miss through :class:`RecordingStore`, and self-heal."""
        direct, rdir, baseline, path = warmed

        def chop_one_column(meta, arrays):
            prefix = _first_prefix(meta)
            arrays[prefix + "count"] = arrays[prefix + "count"][:-1]

        _rewrite_signed(path, chop_one_column)
        with pytest.raises(RecordingError, match="ragged"):
            load_recordings(path)
        store = RecordingStore(rdir)
        assert store.get(path.stem) is None  # dropped on sight...
        assert not path.exists()  # ...and deleted, not served
        self._assert_selfhealed(direct, rdir, baseline)

    def test_truncated_index_pool_is_rejected_and_healed(self, warmed):
        """A pool slice pointing past the end of the shared index pool
        (the on-disk shape of a truncated pool array) must be rejected."""
        direct, rdir, baseline, path = warmed

        def overrun_pool(meta, arrays):
            prefix = _first_prefix(meta)
            kinds = arrays[prefix + "kinds"]
            pooled = np.isin(
                kinds,
                np.asarray(
                    [
                        KIND_IDS[k]
                        for k in (
                            "gather",
                            "scatter",
                            "load_windows",
                            "scalar_load",
                            "scalar_store",
                        )
                    ],
                    dtype=kinds.dtype,
                ),
            )
            assert pooled.any()  # spmv streams always gather
            num = arrays[prefix + "num"].copy()
            num[pooled] += arrays[prefix + "pool"].size + 1
            arrays[prefix + "num"] = num

        _rewrite_signed(path, overrun_pool)
        with pytest.raises(RecordingError, match="pool"):
            load_recordings(path)
        assert RecordingStore(rdir).get(path.stem) is None
        assert not path.exists()
        self._assert_selfhealed(direct, rdir, baseline)

    def test_load_memo_never_serves_a_corrupted_file(self, warmed):
        """The in-process memo is stat-keyed: any on-disk change misses."""
        _, rdir, _, path = warmed
        store = RecordingStore(rdir)
        key = path.stem
        assert store.get(key) is not None  # memo warm
        path.write_bytes(b"rotten")
        assert store.get(key) is None
        assert not path.exists()  # dropped, not served


class TestKeyDiscipline:
    def _unit(self, via_config=VIA_16_2P, kernel="spmv"):
        coll = small_collection(1, seed=51, max_n=128)
        units = spmv_units(coll, formats=("csr",), via_config=via_config)
        recs = record_units(units, record_dir="/tmp/unused")
        import dataclasses

        return dataclasses.replace(recs[0], kernel=kernel)

    def test_port_count_is_not_in_the_key(self):
        a = recording_key(self._unit(VIA_16_2P), "c0")
        b = recording_key(self._unit(VIA_16_4P), "c0")
        assert a == b

    def test_sram_capacity_is_in_the_key(self):
        a = recording_key(self._unit(VIA_16_2P), "c0")
        b = recording_key(self._unit(VIA_4_2P), "c0")
        assert a != b

    def test_parts_are_separate_artifacts(self):
        u = self._unit()
        assert recording_key(u, "c0", part="via") != recording_key(
            u, "c0", part="base"
        )

    def test_code_version_is_in_the_key(self):
        u = self._unit()
        assert recording_key(u, "c0") != recording_key(u, "c1")

    def test_ops_schema_version_is_in_the_key(self, monkeypatch):
        u = self._unit()
        before = recording_key(u, "c0")
        monkeypatch.setattr(recordings_mod, "OPS_SCHEMA_VERSION", 999)
        assert recording_key(u, "c0") != before

    def test_shared_baseline_drops_capacity_only_for_base_part(self):
        a16 = self._unit(VIA_16_2P, kernel="spma")
        a4 = self._unit(VIA_4_2P, kernel="spma")
        assert recording_key(a16, "c0", part="base") == recording_key(
            a4, "c0", part="base"
        )
        assert recording_key(a16, "c0", part="via") != recording_key(
            a4, "c0", part="via"
        )
        # spmv baselines read the block size — capacity stays in their key
        s16 = self._unit(VIA_16_2P)
        s4 = self._unit(VIA_4_2P)
        assert recording_key(s16, "c0", part="base") != recording_key(
            s4, "c0", part="base"
        )
