"""Structure-metric and quartile-split edge cases.

Regression suite for the degenerate inputs the cost-model dataset can
mine (empty matrices, single rows, fully dense blocks) and for the
``quartile_split`` fixes: empty input, fewer values than categories, and
all-equal metrics must produce defined, non-empty, finite results
instead of empty bins and NaN medians.
"""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices.stats import (
    block_density_metric,
    nnz_per_row_metric,
    quartile_split,
    structure_stats,
)


def _empty(rows=8, cols=8):
    return COOMatrix((rows, cols), [], [], [])


def _single_row(cols=16, nnz=5):
    return COOMatrix(
        (1, cols), np.zeros(nnz, int), np.arange(nnz), np.ones(nnz)
    )


def _dense_block(n=8):
    rows, cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return COOMatrix(
        (n, n), rows.ravel(), cols.ravel(), np.ones(n * n)
    )


class TestMetricsEdgeMatrices:
    def test_nnz_per_row_empty_matrix(self):
        assert nnz_per_row_metric(_empty()) == 0.0

    def test_block_density_empty_matrix(self):
        # an empty matrix stores no blocks: the metric is 0, not NaN
        assert block_density_metric(_empty()) == 0.0

    def test_nnz_per_row_single_row(self):
        assert nnz_per_row_metric(_single_row(nnz=5)) == 5.0

    def test_block_density_single_row(self):
        # one stored block holding every entry
        assert block_density_metric(_single_row(nnz=5), block_size=16) == 5.0

    def test_nnz_per_row_dense_block(self):
        assert nnz_per_row_metric(_dense_block(8)) == 8.0

    def test_block_density_dense_block(self):
        # block covers the whole matrix: median = total nnz
        assert block_density_metric(_dense_block(8), block_size=8) == 64.0

    def test_structure_stats_empty_matrix(self):
        stats = structure_stats(_empty(4, 4))
        assert stats.nnz == 0
        assert stats.avg_nnz_per_row == 0.0
        assert stats.max_nnz_per_row == 0
        assert stats.empty_rows == 4
        assert stats.bandwidth == 0
        assert stats.median_nnz_per_block == 0.0

    def test_structure_stats_dense_block(self):
        stats = structure_stats(_dense_block(8), csb_block_size=8)
        assert stats.density == 1.0
        assert stats.empty_rows == 0
        assert stats.csb_num_blocks == 1

    def test_structure_stats_accepts_prebuilt_csb(self):
        from repro.formats.csb import CSBMatrix

        coo = _dense_block(8)
        csb = CSBMatrix.from_coo(coo, block_size=4)
        stats = structure_stats(coo, csb_block_size=999, csb=csb)
        # the prebuilt CSB wins over the block-size argument
        assert stats.csb_block_size == 4
        assert stats.csb_num_blocks == csb.num_blocks


class TestQuartileSplit:
    def test_empty_input(self):
        groups, medians = quartile_split([])
        assert groups == [] and medians == []

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_fewer_values_than_categories(self, n):
        values = [float(i + 1) for i in range(n)]
        groups, medians = quartile_split(values)
        assert len(groups) == n == len(medians)
        assert all(g.size > 0 for g in groups)
        assert all(np.isfinite(m) for m in medians)
        # every index appears exactly once, in ascending metric order
        assert sorted(np.concatenate(groups).tolist()) == list(range(n))
        assert medians == sorted(medians)

    def test_all_equal_values(self):
        groups, medians = quartile_split([7.0] * 8)
        assert len(groups) == 4
        assert [g.size for g in groups] == [2, 2, 2, 2]
        assert medians == [7.0] * 4
        # stable: equal values keep input order across the groups
        assert np.concatenate(groups).tolist() == list(range(8))

    def test_four_or_more_values(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0, 0.0, 7.0, 6.0]
        groups, medians = quartile_split(values)
        assert len(groups) == 4
        assert sum(g.size for g in groups) == len(values)
        assert medians == sorted(medians)
        # groups partition indices by ascending metric
        flat = np.concatenate(groups)
        assert sorted(flat.tolist()) == list(range(len(values)))
        assert [values[i] for i in flat] == sorted(values)

    def test_categorize_tolerates_small_input(self):
        # the Fig. 10/11 consumer: must not crash on a 2-matrix sweep
        from repro.eval.categories import categorize
        from repro.eval.harness import SweepRecord

        records = [
            SweepRecord(
                name=f"m{i}", domain="random", n=8, nnz=8,
                metric=float(i + 1), speedup={"csr": 2.0},
            )
            for i in range(2)
        ]
        result = categorize(records)
        assert len(result.rows) == 2
        assert all(row.count == 1 for row in result.rows)
        assert [row.median_metric for row in result.rows] == [1.0, 2.0]
