"""Unit tests for the supervised subprocess worker pool.

Each failure path in :mod:`repro.serve.pool` is driven deterministically
through the :mod:`repro.serve.chaos` fault plan:

* a worker crash mid-job is retried transparently and the slot respawns;
* a job that crashes every attempt fails ``worker_crash`` with its
  attempt history;
* a job key that keeps killing workers trips the poison circuit breaker
  — and later submissions with the same key are refused at submit time;
* a hung worker is SIGKILLed on the per-job timeout and the timeout is
  *not* retried (it is deterministic);
* corrupted replies replace the worker and retry the job;
* cancel kills a running job's worker promptly;
* ``stop()`` resolves every outstanding future and reaps every worker
  process and the supervisor thread — no leaks, ever.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.errors import JobCancelled, ServeError
from repro.serve.chaos import ChaosConfig
from repro.serve.jobs import JobSpec, JobState
from repro.serve.pool import PoisonJobError, PoolConfig, WorkerPool
from repro.serve.scheduler import Scheduler, ServiceConfig


def _request(kind="sleep", **fields):
    """A wire-shaped pool request for a job of ``kind``."""
    spec = {"kind": kind, **fields}
    if kind == "sleep":
        spec.setdefault("duration_s", 0.01)
    return {
        "spec": spec,
        "cache_dir": None,
        "record_dir": None,
        "validate": False,
    }


def _pid_gone(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:  # pragma: no cover - alive under another uid
        return False
    return False


def _supervisor_threads():
    return [
        t for t in threading.enumerate()
        if t.name == "repro-serve-pool" and t.is_alive()
    ]


@pytest.fixture
def make_pool():
    """Build + start pools; every pool is stopped at test teardown."""
    pools = []

    def factory(chaos_spec=None, **config):
        chaos = ChaosConfig.parse(chaos_spec) if chaos_spec else None
        pool = WorkerPool(PoolConfig(chaos=chaos, **config))
        pools.append(pool)
        pool.start()
        return pool

    yield factory
    for pool in pools:
        pool.stop()


class TestDispatch:
    def test_roundtrip_and_health(self, make_pool):
        pool = make_pool(workers=2)
        task = pool.submit(_request("sleep", duration_s=0.01))
        out = task.future.result(timeout=60)
        assert out["payload"] == {"slept_s": 0.01}
        assert set(out["metrics"]) >= {"units_executed", "cache_hits"}

        health = pool.health()
        assert len(health["workers"]) == 2
        assert all(
            w["state"] in ("spawning", "idle", "busy", "respawning")
            for w in health["workers"]
        )
        assert health["quarantined_keys"] == []

    def test_submit_after_stop_fails_structured(self, make_pool):
        pool = make_pool(workers=1)
        pool.stop()
        task = pool.submit(_request())
        with pytest.raises(ServeError) as info:
            task.future.result(timeout=5)
        assert info.value.code == "stopped"


class TestCrashRecovery:
    def test_one_crash_is_retried_transparently(self, make_pool):
        pool = make_pool(chaos_spec="crash:times=1", workers=2, retries=2)
        task = pool.submit(_request("sleep", duration_s=0.01))
        out = task.future.result(timeout=60)
        assert out["payload"] == {"slept_s": 0.01}

        snap = pool.metrics.snapshot()
        assert snap["pool_retries"] == 1
        assert snap["pool_worker_restarts"] >= 1

    def test_crash_on_every_attempt_fails_worker_crash(self, make_pool):
        pool = make_pool(chaos_spec="crash:times=8", workers=1, retries=1)
        task = pool.submit(_request("sleep", duration_s=0.01))
        with pytest.raises(ServeError) as info:
            task.future.result(timeout=60)
        assert info.value.code == "worker_crash"
        # the message carries the per-attempt history
        assert "attempt 1" in str(info.value)
        assert "attempt 2" in str(info.value)
        assert pool.metrics.snapshot()["pool_retries"] == 1

    def test_corrupt_reply_replaces_worker_and_retries(self, make_pool):
        pool = make_pool(chaos_spec="corrupt:times=1", workers=1, retries=2)
        task = pool.submit(_request("sleep", duration_s=0.01))
        out = task.future.result(timeout=60)
        assert out["payload"] == {"slept_s": 0.01}

        snap = pool.metrics.snapshot()
        assert snap["pool_corrupt_replies"] == 1
        assert snap["pool_worker_restarts"] >= 1

    def test_slow_start_lands_in_respawn_histogram(self, make_pool):
        pool = make_pool(
            chaos_spec="slow_start:times=1:delay=0.3", workers=1
        )
        task = pool.submit(_request("sleep", duration_s=0.01))
        task.future.result(timeout=60)
        hist = pool.metrics.snapshot()["pool_respawn_seconds"]
        assert hist["count"] >= 1
        assert hist["max"] >= 0.3


class TestPoison:
    def test_quarantine_then_submit_time_breaker(self, make_pool):
        pool = make_pool(
            chaos_spec="crash:times=8",
            workers=1,
            retries=5,
            poison_threshold=2,
        )
        task = pool.submit(
            _request("sleep", duration_s=0.01), poison_key="pk-1"
        )
        with pytest.raises(PoisonJobError) as info:
            task.future.result(timeout=60)
        assert info.value.code == "poison_job"
        assert "2 worker crash(es)" in str(info.value)

        # the circuit breaker now refuses the key without dispatching
        again = pool.submit(
            _request("sleep", duration_s=0.01), poison_key="pk-1"
        )
        assert again.future.done()
        with pytest.raises(PoisonJobError):
            again.future.result(timeout=5)

        assert pool.health()["quarantined_keys"] == ["pk-1"]
        assert pool.metrics.snapshot()["pool_poison_jobs"] == 2

    def test_success_forgives_crash_history(self, make_pool):
        pool = make_pool(
            chaos_spec="crash:times=1",
            workers=1,
            retries=2,
            poison_threshold=2,
        )
        task = pool.submit(
            _request("sleep", duration_s=0.01), poison_key="pk-2"
        )
        task.future.result(timeout=60)  # crash once, then succeed
        with pool._lock:
            assert pool._crash_counts == {}
        assert pool.health()["quarantined_keys"] == []


class TestTimeouts:
    def test_timeout_kills_worker_and_reclaims_slot(self, make_pool):
        pool = make_pool(workers=1)
        task = pool.submit(
            _request("sleep", duration_s=30.0), timeout_s=0.3
        )
        begin = time.monotonic()
        with pytest.raises(ServeError) as info:
            task.future.result(timeout=30)
        assert time.monotonic() - begin < 5.0
        assert info.value.code == "timeout"

        snap = pool.metrics.snapshot()
        assert snap["pool_timeout_kills"] == 1
        assert snap["pool_retries"] == 0  # timeouts are not retried

        # the killed slot respawned: the pool keeps serving
        ok = pool.submit(_request("sleep", duration_s=0.01))
        assert ok.future.result(timeout=60)["payload"] == {"slept_s": 0.01}

    def test_hang_fault_drives_the_timeout_watchdog(self, make_pool):
        pool = make_pool(chaos_spec="hang:delay=60", workers=1)
        task = pool.submit(
            _request("sleep", duration_s=0.01), timeout_s=0.5
        )
        with pytest.raises(ServeError) as info:
            task.future.result(timeout=30)
        assert info.value.code == "timeout"
        assert pool.metrics.snapshot()["pool_timeout_kills"] == 1


class TestCancel:
    def test_cancel_queued_never_dispatches(self, make_pool):
        pool = make_pool(workers=1)
        busy = pool.submit(_request("sleep", duration_s=1.0))
        queued = pool.submit(_request("sleep", duration_s=1.0))
        assert pool.cancel(queued) is True
        with pytest.raises(JobCancelled):
            queued.future.result(timeout=5)
        busy.future.result(timeout=60)
        assert pool.cancel(busy) is False  # already terminal

    def test_cancel_running_kills_the_worker(self, make_pool):
        pool = make_pool(workers=1)
        task = pool.submit(_request("sleep", duration_s=30.0))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if any(
                w.get("state") == "busy"
                for w in pool.health()["workers"]
            ):
                break
            time.sleep(0.01)
        assert pool.cancel(task) is True
        with pytest.raises(JobCancelled):
            task.future.result(timeout=5)

        # the killed slot respawns and serves again, long before the
        # cancelled sleep would have finished
        ok = pool.submit(_request("sleep", duration_s=0.01))
        assert ok.future.result(timeout=60)["payload"] == {"slept_s": 0.01}
        assert pool.metrics.snapshot()["pool_worker_restarts"] >= 1


class TestStop:
    def test_stop_resolves_futures_and_leaks_nothing(self):
        pool = WorkerPool(PoolConfig(workers=2))
        pool.start()
        tasks = [
            pool.submit(_request("sleep", duration_s=30.0))
            for _ in range(3)  # two in flight, one queued
        ]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if sum(
                1 for w in pool.health()["workers"]
                if w.get("state") == "busy"
            ) == 2:
                break
            time.sleep(0.01)
        pids = [
            w["pid"] for w in pool.health()["workers"] if "pid" in w
        ]
        assert pids

        pool.stop()
        for task in tasks:
            with pytest.raises(ServeError) as info:
                task.future.result(timeout=5)
            assert info.value.code == "stopped"
        for pid in pids:
            assert _pid_gone(pid), f"worker {pid} outlived stop()"
        assert _supervisor_threads() == []
        pool.stop()  # idempotent

    def test_scheduler_stop_reclaims_timed_out_and_running_jobs(self):
        """The teardown satellite: ``Scheduler.stop()`` SIGKILLs workers
        holding abandoned/running jobs and leaks neither processes nor
        the supervisor thread."""

        async def case():
            s = Scheduler(ServiceConfig(batch_window_s=0.0))
            await s.start()
            job = s.submit(
                JobSpec.from_payload(
                    {"kind": "sleep", "duration_s": 30.0, "timeout_s": 60.0}
                )
            )
            for _ in range(500):
                if job.state is JobState.RUNNING:
                    break
                await asyncio.sleep(0.01)
            assert job.state is JobState.RUNNING
            pids = [
                w["pid"]
                for w in s.pool.health()["workers"]
                if "pid" in w
            ]
            begin = time.monotonic()
            await s.stop()
            elapsed = time.monotonic() - begin
            done = s.get(job.job_id)
            return pids, elapsed, done

        pids, elapsed, done = asyncio.run(case())
        # stop() did not wait out the 30 s sleep: the worker was killed
        assert elapsed < 15.0
        assert done.state is JobState.FAILED
        assert done.error["code"] == "stopped"
        for pid in pids:
            assert _pid_gone(pid), f"worker {pid} outlived Scheduler.stop()"
        assert _supervisor_threads() == []
