"""SpMA and SpMM kernel tests: correctness, capacity tiling, timing shape."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import COOMatrix, CSCMatrix, CSRMatrix
from repro.kernels import (
    reference,
    spma_csr_baseline,
    spma_via,
    spmm_csr_baseline,
    spmm_via,
)
from repro.matrices import power_law, random_uniform
from repro.via import VIA_4_2P, VIA_16_2P, VIA_16_4P


@pytest.fixture(scope="module")
def spma_pair():
    a = CSRMatrix.from_coo(random_uniform(200, 0.03, 21))
    b = CSRMatrix.from_coo(random_uniform(200, 0.03, 22))
    return a, b


@pytest.fixture(scope="module")
def spmm_pair():
    a = CSRMatrix.from_coo(random_uniform(150, 0.03, 23))
    b = CSCMatrix.from_coo(random_uniform(150, 0.03, 24))
    return a, b


class TestSpma:
    def test_baseline_correct(self, spma_pair):
        a, b = spma_pair
        res = spma_csr_baseline(a, b)
        want = CSRMatrix.from_coo(reference.spma(a, b))
        assert res.output.allclose(want)

    def test_via_correct(self, spma_pair):
        a, b = spma_pair
        res = spma_via(a, b)
        want = CSRMatrix.from_coo(reference.spma(a, b))
        assert res.output.allclose(want)

    def test_via_wins_big(self, spma_pair):
        a, b = spma_pair
        speedup = spma_csr_baseline(a, b).cycles / spma_via(a, b).cycles
        assert speedup > 2.5

    def test_baseline_pays_branches_via_does_not(self, spma_pair):
        a, b = spma_pair
        rb, rv = spma_csr_baseline(a, b), spma_via(a, b)
        assert rb.counters.branch_mispredicts > 0
        assert rv.counters.branch_mispredicts == 0
        assert rv.counters.cam_searches > 0

    def test_shape_mismatch(self):
        a = CSRMatrix.from_dense(np.eye(3))
        b = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(ShapeError):
            spma_via(a, b)

    def test_disjoint_patterns(self):
        a = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0, 0.0]))
        dense_b = np.zeros((4, 4))
        dense_b[0, 3] = 5.0
        b = CSRMatrix.from_dense(dense_b)
        res = spma_via(a, b)
        want = a.to_dense() + dense_b
        np.testing.assert_allclose(res.output.to_dense(), want)

    def test_overlapping_entries_accumulate(self):
        a = CSRMatrix.from_dense(np.full((2, 2), 1.0))
        b = CSRMatrix.from_dense(np.full((2, 2), 2.0))
        res = spma_via(a, b)
        np.testing.assert_allclose(res.output.to_dense(), np.full((2, 2), 3.0))

    def test_long_rows_tile_over_cam_capacity(self):
        # a row wider than the 4 KB config's 256-entry index table
        n = 2000
        rng = np.random.default_rng(5)
        cols_a = np.sort(rng.choice(n, size=600, replace=False))
        cols_b = np.sort(rng.choice(n, size=600, replace=False))
        a = CSRMatrix.from_coo(
            COOMatrix((2, n), np.zeros(600, int), cols_a, rng.standard_normal(600))
        )
        b = CSRMatrix.from_coo(
            COOMatrix((2, n), np.zeros(600, int), cols_b, rng.standard_normal(600))
        )
        res = spma_via(a, b, via_config=VIA_4_2P)
        want = CSRMatrix.from_coo(reference.spma(a, b))
        assert res.output.allclose(want)

    def test_empty_operands(self):
        a = CSRMatrix.from_coo(COOMatrix.empty((6, 6)))
        b = CSRMatrix.from_coo(COOMatrix.empty((6, 6)))
        assert spma_via(a, b).output.nnz == 0


class TestSpmm:
    def test_baseline_correct(self, spmm_pair):
        a, b = spmm_pair
        res = spmm_csr_baseline(a, b)
        want = CSRMatrix.from_coo(reference.spmm(a, b))
        assert res.output.allclose(want)

    def test_via_correct(self, spmm_pair):
        a, b = spmm_pair
        res = spmm_via(a, b)
        want = CSRMatrix.from_coo(reference.spmm(a, b))
        assert res.output.allclose(want)

    def test_via_wins_big(self, spmm_pair):
        a, b = spmm_pair
        speedup = spmm_csr_baseline(a, b).cycles / spmm_via(a, b).cycles
        assert speedup > 3.0

    def test_inner_dimension_checked(self):
        a = CSRMatrix.from_dense(np.eye(3))
        b = CSCMatrix.from_dense(np.eye(4))
        with pytest.raises(ShapeError):
            spmm_via(a, b)

    def test_identity_product(self):
        a = CSRMatrix.from_dense(np.eye(8))
        b = CSCMatrix.from_dense(np.eye(8))
        res = spmm_via(a, b)
        np.testing.assert_allclose(res.output.to_dense(), np.eye(8))

    def test_b_restreams_per_row(self, spmm_pair):
        a, b = spmm_pair
        res = spmm_csr_baseline(a, b)
        # B re-streams once per non-empty A row: line accesses far exceed
        # a single pass over the operand arrays
        single_pass_lines = (a.nnz + b.nnz) * 12 // 64
        assert res.counters.mem_line_accesses > 5 * single_pass_lines

    def test_ports_help_spmm_more_than_size(self, spmm_pair):
        # paper Section VI-A: SpMM is ports-sensitive, not size-sensitive
        a, b = spmm_pair
        base = spmm_via(a, b, via_config=VIA_4_2P).cycles
        more_size = spmm_via(a, b, via_config=VIA_16_2P).cycles
        more_ports = spmm_via(a, b, via_config=VIA_16_4P).cycles
        gain_size = base / more_size
        gain_ports = more_size / more_ports
        assert gain_ports >= gain_size

    def test_hub_rows_tile(self):
        # power-law matrices have hub rows wider than small CAM configs
        a = CSRMatrix.from_coo(power_law(300, 6, 1.6, 31))
        b = CSCMatrix.from_coo(power_law(300, 6, 1.6, 32))
        res = spmm_via(a, b, via_config=VIA_4_2P)
        want = CSRMatrix.from_coo(reference.spmm(a, b))
        assert res.output.allclose(want)
