"""The metrics registry: counters, gauges, histogram percentiles, text dump."""

import math
import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_histogram_summary(self):
        h = Histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == 5050
        assert snap["min"] == 1 and snap["max"] == 100
        assert snap["p50"] == 50
        assert snap["p95"] == 95
        assert snap["p99"] == 99

    def test_histogram_empty(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert math.isnan(snap["p50"]) and math.isnan(snap["min"])

    def test_histogram_reservoir_keeps_recent_exact_totals(self):
        h = Histogram("ring", max_samples=10)
        for v in range(100):
            h.observe(v)
        snap = h.snapshot()
        # totals are lifetime-exact ...
        assert snap["count"] == 100
        assert snap["sum"] == sum(range(100))
        assert snap["min"] == 0 and snap["max"] == 99
        # ... percentiles reflect the newest window (90..99)
        assert snap["p50"] >= 90

    def test_percentile_nearest_rank(self):
        assert percentile([1.0], 0.99) == 1.0
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.95) == 4.0
        assert math.isnan(percentile([], 0.5))

    def test_thread_safety_under_contention(self):
        h = Histogram("contended")
        c = Counter("contended_count")

        def worker():
            for _ in range(1000):
                h.observe(1.0)
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8000
        assert c.value == 8000
        assert h.snapshot()["sum"] == 8000


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("wait").observe(0.5)
        snap = reg.snapshot()
        assert snap["jobs"] == 3
        assert snap["depth"] == 2
        assert snap["wait"]["count"] == 1
        json.dumps(snap)  # must serialize

    def test_text_dump_prometheus_shape(self):
        reg = MetricsRegistry(prefix="serve")
        reg.counter("jobs_submitted", help="jobs admitted").inc(7)
        reg.gauge("queue_depth").set(3)
        h = reg.histogram("service_seconds")
        h.observe(0.25)
        text = reg.render_text()
        assert "# TYPE serve_jobs_submitted counter" in text
        assert "serve_jobs_submitted 7" in text
        assert "# HELP serve_jobs_submitted jobs admitted" in text
        assert "serve_queue_depth 3" in text
        assert 'serve_service_seconds{quantile="0.5"} 0.25' in text
        assert "serve_service_seconds_count 1" in text
        assert text.endswith("\n")
