"""Property-based tests (hypothesis) for the SSPM and VIA kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, CSRMatrix
from repro.kernels import reference, spma_via, spmv_csr_via
from repro.via import SSPM, Dest, Mode, ViaConfig, ViaDevice


@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.floats(-100, 100, allow_nan=False)),
        min_size=1,
        max_size=64,
    )
)
@settings(max_examples=60, deadline=None)
def test_dm_mode_behaves_like_an_array(writes):
    """Direct-mapped SSPM == plain array with a written-flag per slot."""
    sspm = SSPM(ViaConfig(4, 2))
    model = {}
    for idx, val in writes:
        sspm.dm_write([idx], [val])
        model[idx] = val
    probe = np.arange(64)
    expected = np.array([model.get(i, 0.0) for i in probe])
    np.testing.assert_allclose(sspm.dm_read(probe), expected)


@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.floats(-50, 50, allow_nan=False)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_cam_accumulate_behaves_like_a_dict(updates):
    """CAM-mode add == defaultdict(float) accumulation, insertion-ordered."""
    sspm = SSPM(ViaConfig(4, 2))
    model = {}
    for idx, val in updates:
        sspm.cam_write([idx], [val], op="add")
        model[idx] = model.get(idx, 0.0) + val
    assert sspm.element_count == len(model)
    tracked = sspm.cam_tracked_indices(0, len(model))
    np.testing.assert_array_equal(tracked, list(model.keys()))  # in order
    values = sspm.cam_slot_values(0, len(model))
    np.testing.assert_allclose(values, list(model.values()), atol=1e-9)


@given(
    st.lists(
        st.tuples(st.integers(0, 127), st.floats(-10, 10, allow_nan=False)),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=40, deadline=None)
def test_device_sspm_accumulate_scatter_semantics(updates):
    """vidxadd.d with SSPM destination == np.add.at on a zero array."""
    dev = ViaDevice(ViaConfig(4, 2))
    idx = np.array([u[0] for u in updates], dtype=np.int64)
    vals = np.array([u[1] for u in updates])
    dev.vidxadd(vals, idx, dest=Dest.SSPM)
    expected = np.zeros(128)
    np.add.at(expected, idx, vals)
    got = dev.vidxadd(np.zeros(128), np.arange(128))
    np.testing.assert_allclose(got, expected, atol=1e-9)


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.floats(-10, 10, allow_nan=False)),
        min_size=1,
        max_size=60,
    ),
    st.lists(
        st.tuples(st.integers(0, 500), st.floats(-10, 10, allow_nan=False)),
        min_size=0,
        max_size=60,
    ),
)
@settings(max_examples=30, deadline=None)
def test_cam_load_then_add_merges_two_streams(a_items, b_items):
    """vidxload.c + vidxadd.c == merging two sparse rows by index."""
    dev = ViaDevice(ViaConfig(16, 2))
    a = {}
    for i, v in a_items:
        a[i] = v  # vidxload.c overwrites on repeated index
    dev.vidxload(
        np.array([v for _, v in a_items]),
        np.array([i for i, _ in a_items], dtype=np.int64),
        Mode.CAM,
    )
    merged = dict(a)
    for i, v in b_items:
        merged[i] = merged.get(i, 0.0) + v
    if b_items:
        dev.vidxadd(
            np.array([v for _, v in b_items]),
            np.array([i for i, _ in b_items], dtype=np.int64),
            mode=Mode.CAM,
            dest=Dest.SSPM,
        )
    idx, vals = dev.drain()
    got = dict(zip(idx.tolist(), vals.tolist()))
    assert set(got) == set(merged)
    for k in merged:
        assert abs(got[k] - merged[k]) < 1e-9


@st.composite
def small_coo(draw, dim=20):
    nnz = draw(st.integers(0, dim * 2))
    rr = draw(st.lists(st.integers(0, dim - 1), min_size=nnz, max_size=nnz))
    cc = draw(st.lists(st.integers(0, dim - 1), min_size=nnz, max_size=nnz))
    vv = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False).filter(lambda v: v != 0),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix((dim, dim), rr, cc, vv)


@given(small_coo())
@settings(max_examples=25, deadline=None)
def test_spmv_via_matches_reference(coo):
    csr = CSRMatrix.from_coo(coo)
    x = np.linspace(-1, 1, coo.cols)
    res = spmv_csr_via(csr, x)
    np.testing.assert_allclose(
        res.output, csr.spmv_reference(x), rtol=1e-9, atol=1e-9
    )


@given(small_coo(), small_coo())
@settings(max_examples=20, deadline=None)
def test_spma_via_matches_reference(coo_a, coo_b):
    a, b = CSRMatrix.from_coo(coo_a), CSRMatrix.from_coo(coo_b)
    res = spma_via(a, b)
    want = CSRMatrix.from_coo(reference.spma(a, b))
    np.testing.assert_allclose(
        res.output.to_dense(), want.to_dense(), rtol=1e-9, atol=1e-9
    )
