"""Property-based fuzzing of the columnar engine (hypothesis).

The differential suite pins the columnar engine on *kernel-shaped*
streams; this one attacks it with adversarial streams a kernel would
never narrate — in the style of ``test_property_via.py``.  A composite
strategy builds arbitrary-but-well-formed op streams covering every op
dataclass, with the boundary shapes called out in DESIGN.md Section 9
baked into the draw space: zero-length streams, single-op streams,
zero-count and zero-pass memory ops, SSPM occupancy exactly at CAM
capacity, and allocations sized to land on every row of the latency
table (L1-resident through DRAM-spilling).

Three properties, each fuzzed independently:

* replaying a synthetic recording (no stored ``PricedState``, so both
  engines take the full memory pass) is bit-identical between the scalar
  and columnar engines, with validation riding both;
* ``ColumnarOps.from_ops`` → ``to_ops`` is a lossless round trip,
  compared field by field (``np.array_equal`` for index arrays);
* :func:`check_columnar_invariants` agrees with the scalar
  :class:`~repro.sim.backends.InvariantBackend`: both accept every
  well-formed stream, and both reject the same seeded violations.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvariantError
from repro.sim.backends import replay_recording
from repro.sim.columnar import (
    ColumnarOps,
    check_columnar_invariants,
    columnar_via_totals,
    price_columnar,
)
from repro.sim.config import DEFAULT_MACHINE
from repro.sim.ops import (
    VECTOR_OP_KINDS,
    AllocOp,
    BranchesOp,
    BulkStreamOp,
    DependencyStallOp,
    GatherOp,
    GatherSerialOp,
    LoadStreamOp,
    LoadWindowsOp,
    Recording,
    ScalarLoadOp,
    ScalarOpsOp,
    ScalarStoreOp,
    ScatterOp,
    ScatterSerialOp,
    StoreStreamOp,
    VectorOpOp,
    ViaOpRecord,
    via_totals,
)
from repro.via.config import VIA_16_2P

from tests.test_ops_replay_differential import assert_result_identical

pytestmark = [pytest.mark.smoke, pytest.mark.columnar]

_CFG = VIA_16_2P
_CAPACITY = _CFG.cam_entries

#: element counts spanning the latency table: L1-resident (rows 0),
#: L2/L3-resident, and DRAM-spilling for 8-byte elements on the default
#: machine — drawn alongside small counts so streams hit every table row
_LEVEL_EDGE_ELEMS = (
    1,
    DEFAULT_MACHINE.l1.size_kb * 1024 // 8,
    DEFAULT_MACHINE.l2.size_kb * 1024 // 8,
    DEFAULT_MACHINE.l3.size_kb * 1024 // 8 + 1024,
)


@st.composite
def _indices(draw, n):
    size = draw(st.integers(1, 24))
    return np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=size, max_size=size)),
        dtype=np.int64,
    )


@st.composite
def _via_op(draw):
    # occupancy exactly at CAM capacity is a deliberate boundary draw
    se = draw(
        st.one_of(
            st.integers(0, _CAPACITY),
            st.just(_CAPACITY),
            st.just(0),
        )
    )
    pp, pc = draw(
        st.sampled_from(
            [
                (1, None),  # derive port cycles from the config
                (2, None),
                (1, 0.0),  # explicit, boundary zero
                (2, 7.0),
                (None, 3.0),  # cycles known, passes unrecorded
            ]
        )
    )
    return ViaOpRecord(
        sspm_elements=se,
        cam_searches=draw(st.integers(0, 64)),
        count=draw(st.integers(1, 32)),
        port_passes=pp,
        port_cycles=pc,
    )


@st.composite
def op_streams(draw):
    """A well-formed random op stream: allocations first, then ops that
    only reference allocated arrays within bounds."""
    ops = []
    arrays = []
    for i in range(draw(st.integers(0, 3))):
        eb = draw(st.sampled_from([4, 8]))
        n = draw(
            st.one_of(
                st.integers(1, 4096),
                st.sampled_from(_LEVEL_EDGE_ELEMS),
            )
        )
        name = f"arr{i}"
        ops.append(AllocOp(name, n, eb))
        arrays.append((name, n))

    def mem_op(kind):
        name, n = draw(st.sampled_from(arrays))
        if kind == "load_stream" or kind == "store_stream":
            start = draw(st.integers(0, n - 1))
            count = draw(st.integers(0, n - start))  # zero-count boundary
            cls = LoadStreamOp if kind == "load_stream" else StoreStreamOp
            return cls(name, start, count)
        if kind == "gather" or kind == "scatter":
            idx = draw(_indices(n))
            cls = GatherOp if kind == "gather" else ScatterOp
            return cls(name, idx, n_instr=draw(st.integers(1, 4)))
        if kind == "load_windows":
            width = draw(st.integers(1, min(8, n)))
            starts = np.asarray(
                draw(
                    st.lists(
                        st.integers(0, n - width), min_size=1, max_size=12
                    )
                ),
                dtype=np.int64,
            )
            return LoadWindowsOp(name, starts, width)
        if kind == "scalar_load" or kind == "scalar_store":
            cls = ScalarLoadOp if kind == "scalar_load" else ScalarStoreOp
            return cls(name, draw(_indices(n)), draw(st.booleans()))
        # bulk_stream; passes=0 is the raw single-pass boundary
        return BulkStreamOp(name, draw(st.integers(0, 2)), draw(st.booleans()))

    mem_kinds = (
        "load_stream",
        "store_stream",
        "gather",
        "scatter",
        "load_windows",
        "scalar_load",
        "scalar_store",
        "bulk_stream",
    )
    for _ in range(draw(st.integers(0, 20))):
        kind = draw(
            st.sampled_from(
                ("scalar", "vector", "branches", "stall", "serial", "via")
                + (mem_kinds if arrays else ())
            )
        )
        if kind == "scalar":
            ops.append(ScalarOpsOp(draw(st.integers(0, 5000))))
        elif kind == "vector":
            ops.append(
                VectorOpOp(
                    draw(st.sampled_from(VECTOR_OP_KINDS)),
                    draw(st.integers(0, 500)),
                )
            )
        elif kind == "branches":
            ops.append(
                BranchesOp(
                    draw(st.integers(0, 1000)),
                    draw(st.floats(0.0, 1.0, allow_nan=False)),
                )
            )
        elif kind == "stall":
            ops.append(
                DependencyStallOp(
                    draw(st.floats(0.0, 1e4, allow_nan=False))
                )
            )
        elif kind == "serial":
            cls = draw(st.sampled_from([GatherSerialOp, ScatterSerialOp]))
            ops.append(
                cls(draw(st.integers(0, 64)), draw(st.integers(1, 16)))
            )
        elif kind == "via":
            ops.append(draw(_via_op()))
        else:
            ops.append(mem_op(kind))
    return ops


def _recording(ops):
    """A synthetic recording with no stored PricedState, so replay takes
    the full memory pass under both engines."""
    return Recording(
        name=f"prop_{_CFG.name}",
        machine=DEFAULT_MACHINE,
        via_config=_CFG,
        ops=list(ops),
    )


def _ops_equal(a, b):
    if type(a) is not type(b):
        return False
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.array_equal(np.asarray(va), np.asarray(vb)):
                return False
        elif va != vb:
            return False
    return True


# ----------------------------------------------------------------------
# fuzzed properties
# ----------------------------------------------------------------------
@given(op_streams())
@settings(max_examples=50, deadline=None)
def test_replay_engines_are_bit_identical(ops):
    rec = _recording(ops)
    scalar = replay_recording(rec, engine="scalar", validate=True)
    columnar = replay_recording(rec, engine="columnar", validate=True)
    assert_result_identical(columnar, scalar)


@given(op_streams())
@settings(max_examples=50, deadline=None)
def test_from_ops_to_ops_roundtrip_is_lossless(ops):
    cols = ColumnarOps.from_ops(ops)
    back = cols.to_ops()
    assert len(back) == len(ops)
    assert all(_ops_equal(a, b) for a, b in zip(ops, back))
    # re-encoding the decoded stream is a fixed point, column for column
    again = ColumnarOps.from_ops(back)
    for name in ("kinds", "count", "aux", "misc", "extra", "array_id",
                 "off", "num", "pool"):
        np.testing.assert_array_equal(
            getattr(cols, name), getattr(again, name), err_msg=name
        )
    np.testing.assert_array_equal(cols.fval, again.fval)  # NaN-tolerant


@given(op_streams())
@settings(max_examples=50, deadline=None)
def test_via_totals_match_bitwise(ops):
    cols = ColumnarOps.from_ops(ops)
    want = via_totals(ops, _CFG)
    got = columnar_via_totals(cols, _CFG)
    for name, w in want.as_dict().items():
        g = got.as_dict()[name]
        if isinstance(w, float):
            assert np.float64(g).tobytes() == np.float64(w).tobytes(), name
        else:
            assert g == w, name


@given(op_streams())
@settings(max_examples=50, deadline=None)
def test_invariants_accept_every_well_formed_stream(ops):
    """Agreement, accepting half: the scalar InvariantBackend rides the
    validated scalar replay above; here the columnar checker must also
    pass every law — structure, occupancy at capacity, and final-counter
    conservation — on the same streams."""
    cols = ColumnarOps.from_ops(ops)
    priced = price_columnar(cols, DEFAULT_MACHINE, validate=True)
    check_columnar_invariants(
        cols, counters=priced.counters, capacity=_CAPACITY
    )


# ----------------------------------------------------------------------
# deterministic boundaries
# ----------------------------------------------------------------------
class TestBoundaries:
    def test_zero_length_stream(self):
        rec = _recording([])
        scalar = replay_recording(rec, engine="scalar", validate=True)
        columnar = replay_recording(rec, engine="columnar", validate=True)
        assert_result_identical(columnar, scalar)
        assert len(ColumnarOps.from_ops([])) == 0

    @pytest.mark.parametrize(
        "op",
        [
            AllocOp("a", 16, 8),
            ScalarOpsOp(7),
            VectorOpOp("fma", 12),
            BranchesOp(100, 0.25),
            DependencyStallOp(33.5),
            GatherSerialOp(5, 4),
            ScatterSerialOp(0, 16),
            ViaOpRecord(sspm_elements=8, cam_searches=3, port_passes=1),
        ],
        ids=lambda op: op.kind,
    )
    def test_single_op_stream(self, op):
        ops = [op] if isinstance(op, AllocOp) else [AllocOp("a", 16, 8), op]
        rec = _recording(ops)
        scalar = replay_recording(rec, engine="scalar", validate=True)
        columnar = replay_recording(rec, engine="columnar", validate=True)
        assert_result_identical(columnar, scalar)

    def test_occupancy_exactly_at_capacity_passes(self):
        cols = ColumnarOps.from_ops(
            [ViaOpRecord(sspm_elements=_CAPACITY, cam_searches=0,
                         port_passes=1)]
        )
        check_columnar_invariants(cols, capacity=_CAPACITY)

    def test_occupancy_over_capacity_raises(self):
        cols = ColumnarOps.from_ops(
            [ViaOpRecord(sspm_elements=_CAPACITY + 1, cam_searches=0,
                         port_passes=1)]
        )
        with pytest.raises(InvariantError, match="capacity"):
            check_columnar_invariants(cols, capacity=_CAPACITY)

    @pytest.mark.parametrize("elems", _LEVEL_EDGE_ELEMS)
    def test_latency_table_edges(self, elems):
        """Streams sized at each cache-level boundary walk a different row
        of the latency table; both engines must agree at every edge."""
        ops = [
            AllocOp("a", elems, 8),
            LoadStreamOp("a", 0, elems),
            LoadStreamOp("a", 0, elems),  # second pass: warm-cache row
        ]
        rec = _recording(ops)
        scalar = replay_recording(rec, engine="scalar", validate=True)
        columnar = replay_recording(rec, engine="columnar", validate=True)
        assert_result_identical(columnar, scalar)


# ----------------------------------------------------------------------
# agreement on rejection: both checkers refuse the same violations
# ----------------------------------------------------------------------
def _corrupt(op, field, value):
    """Op constructors validate eagerly, so model corruption can only
    arise *after* construction — which is precisely what the runtime
    invariant checkers exist to catch.  Inject it the same way."""
    object.__setattr__(op, field, value)
    return op


class TestInvariantAgreement:
    @pytest.mark.parametrize(
        "make_bad, match",
        [
            (
                lambda: _corrupt(BranchesOp(10, 0.5), "mispredict_rate", 1.5),
                "mispredict|branches",
            ),
            (
                lambda: _corrupt(DependencyStallOp(5.0), "cycles", -5.0),
                "decreased|>= 0",
            ),
        ],
        ids=["rate_above_one", "negative_stall"],
    )
    def test_both_engines_reject(self, make_bad, match):
        rec = _recording([make_bad()])
        with pytest.raises(InvariantError, match=match):
            replay_recording(rec, engine="scalar", validate=True)
        rec = _recording([make_bad()])
        with pytest.raises(InvariantError, match=match):
            replay_recording(rec, engine="columnar", validate=True)

    def test_via_op_without_timing_rejected(self):
        bad = _corrupt(
            ViaOpRecord(sspm_elements=4, cam_searches=0, port_passes=1),
            "port_passes",
            None,
        )
        cols = ColumnarOps.from_ops([bad])
        with pytest.raises(InvariantError, match="port"):
            check_columnar_invariants(cols)
