"""Unit tests for the cache, DRAM and hierarchy models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim import (
    Cache,
    CacheConfig,
    DRAMModel,
    MachineConfig,
    MemoryHierarchy,
    compress_lines,
    stream_lines,
)


def tiny_cache(size_kb=1, ways=2, latency=4):
    return Cache(CacheConfig(size_kb, ways, latency))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        hit, victim = c.access_line(42, write=False)
        assert not hit and victim is None
        hit, _ = c.access_line(42, write=False)
        assert hit

    def test_stats_track_hits_and_misses(self):
        c = tiny_cache()
        c.access_line(1, False)
        c.access_line(1, False)
        c.access_line(2, False)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction_order(self):
        c = tiny_cache(size_kb=1, ways=2)  # 8 sets with 64B lines
        sets = c.num_sets
        # three lines mapping to set 0
        a, b, d = 0, sets, 2 * sets
        c.access_line(a, False)
        c.access_line(b, False)
        c.access_line(a, False)  # refresh a; b is now LRU
        c.access_line(d, False)  # evicts b
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)

    def test_dirty_victim_reported(self):
        c = tiny_cache(size_kb=1, ways=1)
        sets = c.num_sets
        c.access_line(0, write=True)
        hit, victim = c.access_line(sets, write=False)  # same set, evicts 0
        assert not hit
        assert victim == 0
        assert c.stats.writebacks == 1

    def test_clean_victim_not_reported(self):
        c = tiny_cache(size_kb=1, ways=1)
        sets = c.num_sets
        c.access_line(0, write=False)
        _hit, victim = c.access_line(sets, write=False)
        assert victim is None

    def test_reset_clears_everything(self):
        c = tiny_cache()
        c.access_line(5, True)
        c.reset()
        assert not c.probe(5)
        assert c.stats.accesses == 0
        assert c.occupancy() == 0.0

    def test_occupancy_grows(self):
        c = tiny_cache()
        assert c.occupancy() == 0.0
        c.access_line(1, False)
        assert c.occupancy() > 0.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 2, 4)
        with pytest.raises(ConfigError):
            CacheConfig(1, 3, 4)  # 1 KB not divisible into 3 ways


class TestLineHelpers:
    def test_compress_collapses_consecutive(self):
        addrs = np.array([0, 8, 16, 64, 64, 128])
        lines, counts = compress_lines(addrs, 64)
        np.testing.assert_array_equal(lines, [0, 1, 2])
        np.testing.assert_array_equal(counts, [3, 2, 1])

    def test_compress_keeps_nonconsecutive_repeats(self):
        addrs = np.array([0, 64, 0])
        lines, _ = compress_lines(addrs, 64)
        np.testing.assert_array_equal(lines, [0, 1, 0])

    def test_compress_empty(self):
        lines, counts = compress_lines(np.array([]), 64)
        assert lines.size == 0 and counts.size == 0

    def test_stream_lines_spans_boundaries(self):
        np.testing.assert_array_equal(stream_lines(60, 8, 64), [0, 1])
        np.testing.assert_array_equal(stream_lines(0, 64, 64), [0])
        assert stream_lines(0, 0, 64).size == 0


class TestDRAM:
    def test_occupancy_scales_with_traffic(self):
        d = DRAMModel(200, 12.8, 64)
        for _ in range(10):
            d.read_line()
        assert d.traffic_bytes == 640
        assert d.occupancy_cycles() == pytest.approx(640 / 12.8)

    def test_writes_count_toward_traffic(self):
        d = DRAMModel(200, 12.8, 64)
        d.write_line()
        assert d.stats.writes == 1
        assert d.traffic_bytes == 64


class TestHierarchy:
    def setup_method(self):
        self.h = MemoryHierarchy(MachineConfig())

    def test_first_touch_goes_to_dram(self):
        res = self.h.access_line(1000, write=False)
        assert res.dram_fills == 1
        assert res.latency_sum >= self.h.machine.dram_latency

    def test_second_touch_hits_l1(self):
        self.h.access_line(1000, write=False)
        res = self.h.access_line(1000, write=False)
        assert res.l1_hits == 1
        assert res.latency_sum == self.h.machine.l1.latency

    def test_l2_hit_after_l1_eviction(self):
        # fill L1 set with conflicting lines, first line falls to L2
        sets = self.h.l1.num_sets
        ways = self.h.l1.ways
        for i in range(ways + 1):
            self.h.access_line(i * sets, write=False)
        res = self.h.access_line(0, write=False)
        assert res.l2_hits == 1

    def test_dirty_eviction_reaches_dram_eventually(self):
        sets = self.h.l1.num_sets
        ways = self.h.l1.ways
        self.h.access_line(0, write=True)
        for i in range(1, ways + 1):
            self.h.access_line(i * sets, write=False)
        # line 0 was evicted dirty from L1 into L2
        assert self.h.l2.stats.accesses > 0

    def test_stream_access_counts_lines(self):
        res = self.h.access_stream(0, 64 * 10)
        assert res.line_accesses == 10
        assert res.dram_fills == 10

    def test_address_batch(self):
        res = self.h.access_addresses(np.arange(0, 640, 8))
        assert res.raw_accesses == 80
        assert res.line_accesses == 10

    def test_level_stats_keys(self):
        self.h.access_line(0, False)
        stats = self.h.level_stats()
        assert set(stats) == {"l1", "l2", "l3", "dram"}

    def test_reset(self):
        self.h.access_line(0, False)
        self.h.reset()
        assert self.h.l1.stats.accesses == 0
        assert self.h.dram.stats.reads == 0
