"""Tests for the virtual matrix collection and structure statistics."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.formats import COOMatrix
from repro.matrices import (
    MatrixCollection,
    block_density_metric,
    domain_names,
    nnz_per_row_metric,
    paper_collection,
    quartile_split,
    small_collection,
    structure_stats,
)


def test_collection_is_deterministic():
    a = small_collection(16, seed=5)
    b = small_collection(16, seed=5)
    assert [s.name for s in a] == [s.name for s in b]
    assert [s.params for s in a] == [s.params for s in b]
    ma, mb = a.matrix(a.specs[0]), b.matrix(b.specs[0])
    np.testing.assert_array_equal(ma.row, mb.row)


def test_collection_seed_matters():
    a = small_collection(16, seed=5)
    b = small_collection(16, seed=6)
    assert [s.seed for s in a] != [s.seed for s in b]


def test_collection_length_and_iteration():
    coll = small_collection(24, seed=0)
    assert len(coll) == 24
    assert len(list(coll)) == 24
    assert len(coll.specs) == 24


def test_collection_materializes_valid_matrices():
    coll = small_collection(12, seed=1, max_n=256)
    for spec, mat in zip(coll, coll.matrices()):
        assert mat.rows == mat.cols
        assert mat.nnz > 0
        assert mat.rows <= 260  # grid/kron generators may round the dim


def test_collection_caches_matrices():
    coll = small_collection(4, seed=2)
    spec = coll.specs[0]
    assert coll.matrix(spec) is coll.matrix(spec)


def test_collection_no_cache_mode():
    coll = MatrixCollection(4, seed=2, min_n=64, max_n=128, cache=False)
    spec = coll.specs[0]
    assert coll.matrix(spec) is not coll.matrix(spec)


def test_collection_spans_multiple_domains():
    coll = small_collection(64, seed=3)
    seen = {s.domain for s in coll}
    assert len(seen) >= 4
    assert seen <= set(domain_names())


def test_by_domain_filter():
    coll = small_collection(64, seed=3)
    for d in domain_names():
        for spec in coll.by_domain(d):
            assert spec.domain == d


def test_paper_collection_profile():
    coll = paper_collection()
    assert len(coll) == 1024
    dims = [s.n for s in coll]
    assert max(dims) <= 20_000
    assert min(dims) >= 256


def test_summary_shape():
    coll = small_collection(10, seed=4)
    s = coll.summary()
    assert s["count"] == 10
    assert set(s["dims"]) == {"min", "median", "max"}
    assert sum(s["domains"].values()) == 10


def test_collection_rejects_bad_args():
    with pytest.raises(ReproError):
        MatrixCollection(0)
    with pytest.raises(ReproError):
        MatrixCollection(4, min_n=100, max_n=10)


class TestStats:
    def setup_method(self):
        dense = np.zeros((40, 40))
        dense[0, :10] = 1.0
        dense[5, 5] = 2.0
        dense[39, 0] = 3.0
        self.mat = COOMatrix.from_dense(dense)

    def test_structure_stats_fields(self):
        st = structure_stats(self.mat, csb_block_size=8)
        assert st.rows == st.cols == 40
        assert st.nnz == 12
        assert st.max_nnz_per_row == 10
        assert st.empty_rows == 37
        assert st.bandwidth == 39
        assert st.csb_num_blocks >= 2
        assert st.median_nnz_per_block > 0

    def test_stats_as_dict(self):
        st = structure_stats(self.mat)
        d = st.as_dict()
        assert d["nnz"] == 12

    def test_nnz_per_row_metric_ignores_empty_rows(self):
        assert nnz_per_row_metric(self.mat) == pytest.approx(12 / 3)

    def test_block_density_metric_positive(self):
        assert block_density_metric(self.mat, block_size=8) > 0


class TestQuartileSplit:
    def test_four_equal_groups(self):
        groups, medians = quartile_split(list(range(100)))
        assert [g.size for g in groups] == [25, 25, 25, 25]
        assert medians == sorted(medians)

    def test_groups_partition_indices(self):
        groups, _ = quartile_split([5.0, 1.0, 3.0, 2.0, 4.0, 0.0, 7.0, 6.0])
        all_idx = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(all_idx, np.arange(8))

    def test_sorted_by_metric(self):
        vals = [10.0, 1.0, 5.0, 7.0]
        groups, medians = quartile_split(vals)
        assert vals[int(groups[0][0])] == 1.0
        assert vals[int(groups[-1][0])] == 10.0
