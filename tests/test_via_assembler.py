"""Tests for the VIA assembler, 64-bit encoding and program executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ISAError
from repro.via import Dest, Mode, Opcode, ViaConfig, ViaDevice
from repro.via.assembler import (
    MAX_COUNT,
    MAX_IDX_OFFSET,
    MAX_OFFSET,
    NUM_VREGS,
    AsmInstruction,
    Program,
    RegisterFile,
    assemble,
    decode,
    encode,
    execute_program,
)


class TestAssemble:
    def test_arith_vrf(self):
        i = assemble("vidxadd.d v3, v1, v2")
        assert i.opcode is Opcode.VIDXADD
        assert i.mode is Mode.DIRECT
        assert (i.dst_reg, i.data_reg, i.idx_reg) == (3, 1, 2)
        assert i.dest is Dest.VRF

    def test_arith_sspm_dest(self):
        i = assemble("vidxadd.c v1, v2, sspm, offset=64")
        assert i.dest is Dest.SSPM
        assert i.offset == 64
        assert i.mode is Mode.CAM

    def test_blkmult(self):
        i = assemble("vidxblkmult.d v1, v2, idx_offset=11, offset=2048")
        assert i.idx_offset == 11 and i.offset == 2048

    def test_mov_and_count(self):
        assert assemble("vidxmov v5, count=4").count == 4
        assert assemble("vidxcount v7").dst_reg == 7

    def test_clear(self):
        assert assemble("vidxclear").opcode is Opcode.VIDXCLEAR

    def test_comments_ignored(self):
        i = assemble("vidxload.d v1, v2  # store the chunk")
        assert i.opcode is Opcode.VIDXLOAD

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "frobnicate v1",
            "vidxadd v1, v2, v3",  # missing mode
            "vidxadd.x v1, v2, v3",  # bad mode
            "vidxadd.d v1",  # too few regs
            "vidxadd.d v1, v2, v3, v4",  # too many regs
            "vidxadd.d v1, v2, v3, bogus=1",
            "vidxmov v1",  # count required
            "vidxblkmult.d v1, v2",  # idx_offset required
            "vidxblkmult.c v1, v2, idx_offset=4",  # CAM invalid
            "vidxcount.d v1",  # no mode allowed
            "vidxadd.d v99, v1, v2",  # register out of range
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ISAError):
            assemble(bad)


class TestEncoding:
    def test_roundtrip_examples(self):
        for text in (
            "vidxload.c v1, v2",
            "vidxadd.d v3, v1, v2, offset=100",
            "vidxsub.c v1, v2, sspm",
            "vidxmult.d v0, v31, v15",
            "vidxblkmult.d v1, v2, idx_offset=11, offset=2048",
            "vidxmov v5, count=16, offset=8",
            "vidxcount v9",
            "vidxclear",
        ):
            instr = assemble(text)
            again = decode(encode(instr))
            assert again == instr, text

    def test_render_then_assemble_roundtrip(self):
        instr = assemble("vidxadd.c v4, v5, sspm, offset=7")
        assert assemble(instr.render()) == instr

    def test_decode_rejects_bad_words(self):
        with pytest.raises(ISAError):
            decode(0xFF)  # unknown opcode id
        with pytest.raises(ISAError):
            decode(-1)

    def test_immediate_limits(self):
        with pytest.raises(ISAError):
            AsmInstruction(Opcode.VIDXADD, Mode.DIRECT, offset=MAX_OFFSET + 1)
        with pytest.raises(ISAError):
            AsmInstruction(
                Opcode.VIDXBLKMULT,
                Mode.DIRECT,
                idx_offset=MAX_IDX_OFFSET + 1,
            )
        with pytest.raises(ISAError):
            AsmInstruction(Opcode.VIDXMOV, count=MAX_COUNT + 1)

    @given(
        st.sampled_from([Opcode.VIDXADD, Opcode.VIDXSUB, Opcode.VIDXMULT]),
        st.sampled_from(list(Mode)),
        st.sampled_from(list(Dest)),
        st.integers(0, NUM_VREGS - 1),
        st.integers(0, NUM_VREGS - 1),
        st.integers(0, NUM_VREGS - 1),
        st.integers(0, MAX_OFFSET),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, op, mode, dest, d, i, o, off):
        instr = AsmInstruction(
            op, mode, dest, data_reg=d, idx_reg=i, dst_reg=o, offset=off
        )
        assert decode(encode(instr)) == instr


class TestProgram:
    SOURCE = """
    # accumulate two updates at positions held in v2
    vidxclear
    vidxload.d v1, v2
    vidxadd.d v1, v2, sspm
    vidxadd.d v3, v1, v2      # read back: v3 = v1 + sspm[v2]
    """

    def test_parse_skips_comments_and_blanks(self):
        prog = Program.parse(self.SOURCE)
        assert len(prog) == 4

    def test_binary_roundtrip(self):
        prog = Program.parse(self.SOURCE)
        again = Program.from_words(prog.to_words())
        assert again.instructions == prog.instructions

    def test_render_reparses(self):
        prog = Program.parse(self.SOURCE)
        again = Program.parse(prog.render())
        assert again.instructions == prog.instructions


class TestExecution:
    def test_load_add_readback(self):
        dev = ViaDevice(ViaConfig(4, 2))
        regs = RegisterFile(dev.vl)
        regs.write(1, [10.0, 20.0, 30.0, 40.0])
        regs.write(2, [0, 1, 2, 3])
        prog = Program.parse(
            """
            vidxclear
            vidxload.d v1, v2
            vidxadd.d v1, v2, sspm      # sspm[i] = 2 * v1[i]
            vidxadd.d v3, v1, v2        # v3 = v1 + sspm = 3 * v1
            """
        )
        out = execute_program(prog, dev, regs)
        np.testing.assert_allclose(out.read(3), [30.0, 60.0, 90.0, 120.0])

    def test_cam_count_and_mov(self):
        dev = ViaDevice(ViaConfig(4, 2))
        regs = RegisterFile(dev.vl)
        regs.write(1, [1.0, 2.0, 3.0, 4.0])
        regs.write(2, [100, 200, 100, 300])  # duplicate key 100
        prog = Program.parse(
            """
            vidxclear
            vidxload.c v1, v2
            vidxcount v4
            vidxmov v5, count=3
            """
        )
        out = execute_program(prog, dev, regs)
        assert out.scalar(4) == 3.0  # three distinct keys tracked
        np.testing.assert_allclose(out.read(5)[:3], [3.0, 2.0, 4.0])

    def test_register_file_validation(self):
        regs = RegisterFile(4)
        with pytest.raises(ISAError):
            regs.write(0, np.arange(9))
