"""CFG builder and fixpoint solver, tested structurally.

The rule families assert over program *paths*; these tests pin the path
structure itself — which edges exist, where jumps route, how exception
state is kept apart from normal state — plus the generic solvers on toy
lattices, so a regression here is caught before it surfaces as a
mysterious lifecycle false positive.
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import CFG, build_cfg, function_cfgs
from repro.analysis.dataflow import (
    FixpointDiverged,
    solve_backward,
    solve_forward,
)


def cfg_of(source, name="f"):
    tree = ast.parse(textwrap.dedent(source))
    for qualname, cfg in function_cfgs(tree):
        if qualname == name:
            return cfg
    raise AssertionError(f"no function {name!r} in fixture")


def kinds(cfg):
    return {bid: cfg.blocks[bid].kind for bid in cfg.blocks}


def edges(cfg):
    return {
        (e.src, e.dst, e.kind)
        for b in cfg.blocks.values()
        for e in b.succs
    }


def blocks_of_kind(cfg, kind):
    return [bid for bid, b in sorted(cfg.blocks.items()) if b.kind == kind]


class TestBuilder:
    def test_if_merges_and_both_arms_reach_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        reach = set(cfg.reachable())
        assert cfg.exit in reach
        stmt_blocks = [b for b in blocks_of_kind(cfg, "stmt") if b in reach]
        assert len(stmt_blocks) == 3  # a=1, a=2, return

    def test_every_payload_block_has_an_exc_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                a = g(x)
                b = h(a)
                return b
            """
        )
        for bid in blocks_of_kind(cfg, "stmt"):
            exc = [e for e in cfg.blocks[bid].succs if e.kind == "exc"]
            assert exc == [
                e for e in cfg.blocks[bid].succs if e.dst == cfg.raise_exit
            ]
            assert len(exc) == 1

    def test_while_has_back_edge_and_break_targets_after(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    if g(x):
                        break
                    x = h(x)
                return x
            """
        )
        (head,) = [
            bid
            for bid in blocks_of_kind(cfg, "branch")
            if isinstance(cfg.blocks[bid].stmt, ast.While)
        ]
        # the loop body feeds the head again (back edge)
        assert any(e.src != cfg.entry for e in cfg.blocks[head].preds
                   if e.src > head)
        # break reaches the return without re-entering the head
        reach = set(cfg.reachable())
        assert cfg.exit in reach

    def test_return_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    return g(x)
                finally:
                    cleanup()
            """
        )
        (cleanup,) = [
            bid
            for bid in blocks_of_kind(cfg, "stmt")
            if isinstance(cfg.blocks[bid].stmt, ast.Expr)
        ]
        (ret,) = [
            bid
            for bid in blocks_of_kind(cfg, "stmt")
            if isinstance(cfg.blocks[bid].stmt, ast.Return)
        ]
        # the return must not reach exit directly — its continuation is
        # wired from the end of the finally body instead
        assert (ret, cfg.exit, "normal") not in edges(cfg)
        assert (cleanup, cfg.exit, "normal") in edges(cfg)

    def test_catch_all_handler_removes_escape_edge(self):
        caught = cfg_of(
            """
            def f(x):
                try:
                    g(x)
                except Exception:
                    h()
            """
        )
        escaped = cfg_of(
            """
            def f(x):
                try:
                    g(x)
                except OSError:
                    h()
            """
        )

        def dispatch_escapes(cfg):
            (dispatch,) = [
                bid
                for bid in blocks_of_kind(cfg, "join")
                if any(e.kind == "exc" for e in cfg.blocks[bid].preds)
            ]
            return any(
                e.dst == cfg.raise_exit for e in cfg.blocks[dispatch].succs
            )

        assert not dispatch_escapes(caught)
        assert dispatch_escapes(escaped)

    def test_handler_entry_has_no_exc_edge(self):
        # the entry executes no user code; an exc edge there would leak
        # the pre-handler state past whatever cleanup the body performs
        cfg = cfg_of(
            """
            def f(x):
                try:
                    g(x)
                except OSError:
                    h()
                    raise
            """
        )
        for bid in blocks_of_kind(cfg, "handler"):
            assert all(e.kind == "normal" for e in cfg.blocks[bid].succs)

    def test_with_separates_exception_exit_from_jump_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                with g(x):
                    if x:
                        return 1
                    h(x)
                return 0
            """
        )
        exits = blocks_of_kind(cfg, "with-exit")
        assert len(exits) == 3  # exceptional, jump-routing, normal
        # exactly one exit block propagates the exception and nothing else
        (exc_exit,) = [
            bid
            for bid in exits
            if all(e.kind == "exc" for e in cfg.blocks[bid].succs)
        ]
        # the block routing the early return must not be the one feeding
        # the raise exit, or exception state bleeds into the normal exit
        (jump_exit,) = [
            bid
            for bid in exits
            if any(
                e.dst == cfg.exit and e.kind == "normal"
                for e in cfg.blocks[bid].succs
            )
            and bid != exc_exit
        ]
        assert all(e.kind == "normal" for e in cfg.blocks[jump_exit].succs)

    def test_function_cfgs_yields_dotted_qualnames(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def top():
                    pass

                class C:
                    def method(self):
                        def inner():
                            pass
                """
            )
        )
        names = [qualname for qualname, _ in function_cfgs(tree)]
        assert names == ["top", "C.method", "C.method.inner"]


class TestForwardSolver:
    def assigned_names(self, cfg):
        """Toy gen-only analysis: which names may be bound at each block."""

        def transfer(block, state):
            stmt = block.stmt
            if isinstance(stmt, ast.Assign):
                out = state | {
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                }
                return out, state  # the binding is absent on the exc edge
            if block.kind == "stmt":
                return state, None  # only assignments raise in this toy
            return state, state

        return solve_forward(
            cfg,
            init=frozenset(),
            bottom=None,
            join=lambda a, b: a | b,
            transfer=transfer,
        )

    def test_branch_states_join_at_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = g()
                else:
                    b = g()
                return x
            """
        )
        sol = self.assigned_names(cfg)
        assert sol.in_states[cfg.exit] == {"a", "b"}

    def test_exception_edge_carries_pre_statement_state(self):
        cfg = cfg_of(
            """
            def f(x):
                a = g(x)
                b = g(a)
                return b
            """
        )
        sol = self.assigned_names(cfg)
        # b = g(a) raising means 'b' was never bound; 'a' may be
        assert sol.in_states[cfg.raise_exit] == {"a"}

    def test_bottom_blocks_stay_unreached(self):
        cfg = cfg_of(
            """
            def f(x):
                return x
                a = dead()
            """
        )
        sol = self.assigned_names(cfg)
        dead = [
            bid
            for bid in cfg.blocks
            if isinstance(cfg.blocks[bid].stmt, ast.Assign)
        ]
        assert all(sol.in_states[bid] is None for bid in dead)

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    a = g(n)
                return n
            """
        )
        sol = self.assigned_names(cfg)
        assert sol.in_states[cfg.exit] == {"a"}

    def test_non_monotone_transfer_raises(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    a = g(n)
                return n
            """
        )
        counter = {"n": 0}

        def transfer(block, state):
            counter["n"] += 1
            return frozenset({counter["n"]}), None

        with pytest.raises(FixpointDiverged):
            solve_forward(
                cfg,
                init=frozenset(),
                bottom=None,
                join=lambda a, b: a | b,
                transfer=transfer,
                max_steps=50,
            )


class TestBackwardSolver:
    def test_toy_liveness(self):
        cfg = cfg_of(
            """
            def f(x):
                a = g()
                b = g()
                return a
            """
        )

        def transfer(block, state):
            stmt = block.stmt
            live = set(state)
            if isinstance(stmt, ast.Assign):
                live -= {
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                }
            for node in ast.walk(stmt) if stmt is not None else ():
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    live.add(node.id)
            return frozenset(live)

        sol = solve_backward(
            cfg,
            init=frozenset(),
            bottom=None,
            join=lambda a, b: a | b,
            transfer=transfer,
        )
        # at entry only the global 'g' is live ('a' is defined before its
        # use; 'b' is dead)
        assert sol.out_states[cfg.entry] == {"g"}
        (ret,) = [
            bid
            for bid in cfg.blocks
            if isinstance(cfg.blocks[bid].stmt, ast.Return)
        ]
        assert "a" in sol.out_states[ret]
