"""The analyzer analyzed: seeded-violation fixtures for every rule id.

Each rule gets at least one true-positive fixture (the violation is
reported) and one clean fixture (no false positive), written to a tmp
tree and scanned through the same :class:`~repro.analysis.core.Project`
machinery the CLI uses.  Family checkers take their scopes as
parameters, so fixtures live under neutral prefixes instead of
pretending to be ``repro.sim``.  Suppression comments, baseline files,
selection, and the CLI's exit-code contract are covered at the end.
"""

import json
import sys
import textwrap

import pytest

from repro.analysis.cli import main as cli_main
from repro.analysis.core import (
    FAMILY_CHECKERS,
    RULES,
    Project,
    load_baseline,
    resolve_selection,
    run_analysis,
    save_baseline,
)
from repro.analysis.determinism import check_determinism
from repro.analysis.hotpath import check_hotpath
from repro.analysis.keys import KeyBinding, assert_key_hygiene, check_keys
from repro.analysis.locks import check_locks
from repro.errors import ConfigError


def make_project(tmp_path, files):
    """Write ``{rel: source}`` fixtures and return a Project rooted there."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Project([tmp_path], root=tmp_path)


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# family: keys (VIA100-VIA103)
# ----------------------------------------------------------------------
DC_TWO_FIELDS = """
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Cfg:
        alpha: int
        beta: int
"""


def binding(**kw):
    base = dict(
        dataclass_module="dcmod",
        dataclass_name="Cfg",
        key_module="keymod",
        key_qualname="make_key",
        root="cfg",
    )
    base.update(kw)
    return (KeyBinding(**base),)


class TestKeyRules:
    def test_via101_unconsumed_field(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    def make_key(cfg):
                        return {"alpha": cfg.alpha}
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA101"]
        assert "Cfg.beta" in findings[0].message
        assert findings[0].path == "dcmod.py"
        assert findings[0].severity == "error"

    def test_no_false_positive_when_all_fields_consumed(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_asdict_consumes_everything(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    from dataclasses import asdict


                    def make_key(cfg):
                        return asdict(cfg)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_exemption_silences_via101(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"beta": "pricing-only knob"}}


                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_via102_stale_exemption(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"gamma": "no such field"}}


                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA102"]
        assert "Cfg.gamma" in findings[0].message
        assert findings[0].path == "keymod.py"

    def test_via103_exempt_but_consumed_is_a_warning(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"alpha": "stale justification"}}


                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA103"]
        assert findings[0].severity == "warning"

    def test_via100_dataclass_renamed_away(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": "def make_key(cfg):\n    return (cfg.alpha,)\n",
            },
        )
        findings = check_keys(
            project, bindings=binding(dataclass_name="Renamed")
        )
        assert rules_of(findings) == ["VIA100"]

    def test_via100_key_builder_renamed_away(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": "def other_name(cfg):\n    return (cfg.alpha,)\n",
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA100"]

    def test_attr_path_scopes_consumption_to_the_sub_object(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": """
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class Sub:
                        x: int
                        y: int
                """,
                "keymod.py": """
                    def make_key(cfg):
                        return (cfg.sub.x,)
                """,
            },
        )
        findings = check_keys(
            project,
            bindings=binding(dataclass_name="Sub", attr_path=("sub",)),
        )
        assert rules_of(findings) == ["VIA101"]
        assert "Sub.y" in findings[0].message

    def test_method_qualname_binding(self, tmp_path):
        # the JobSpec.batch_key shape: the dataclass keys itself
        project = make_project(
            tmp_path,
            {
                "dcmod.py": """
                    from dataclasses import dataclass


                    @dataclass
                    class Cfg:
                        alpha: int
                        beta: int

                        def key(self):
                            return (self.alpha,)
                """,
            },
        )
        findings = check_keys(
            project,
            bindings=binding(
                key_module="dcmod", key_qualname="Cfg.key", root="self"
            ),
        )
        assert rules_of(findings) == ["VIA101"]
        assert "Cfg.beta" in findings[0].message

    def test_binding_outside_the_file_set_is_skipped(self, tmp_path):
        project = make_project(tmp_path, {"unrelated.py": "VALUE = 1\n"})
        assert check_keys(project, bindings=binding()) == []


class TestRuntimeKeyHygiene:
    def _install(self, tmp_path, monkeypatch, modules):
        monkeypatch.syspath_prepend(str(tmp_path))
        for name, source in modules.items():
            (tmp_path / f"{name}.py").write_text(
                textwrap.dedent(source), encoding="utf-8"
            )
            sys.modules.pop(name, None)
        import importlib

        importlib.invalidate_caches()

    def test_live_drift_fails_fast(self, tmp_path, monkeypatch):
        self._install(
            tmp_path,
            monkeypatch,
            {
                "via_hyg_bad_dc": DC_TWO_FIELDS,
                "via_hyg_bad_key": """
                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        bindings = binding(
            dataclass_module="via_hyg_bad_dc", key_module="via_hyg_bad_key"
        )
        try:
            with pytest.raises(ConfigError, match="VIA101.*Cfg\\.beta"):
                assert_key_hygiene(bindings)
        finally:
            sys.modules.pop("via_hyg_bad_dc", None)
            sys.modules.pop("via_hyg_bad_key", None)

    def test_live_clean_passes(self, tmp_path, monkeypatch):
        self._install(
            tmp_path,
            monkeypatch,
            {
                "via_hyg_ok_dc": DC_TWO_FIELDS,
                "via_hyg_ok_key": """
                    KEY_EXEMPT = {"Cfg": {"beta": "pricing-only knob"}}


                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        bindings = binding(
            dataclass_module="via_hyg_ok_dc", key_module="via_hyg_ok_key"
        )
        try:
            assert_key_hygiene(bindings)  # must not raise
        finally:
            sys.modules.pop("via_hyg_ok_dc", None)
            sys.modules.pop("via_hyg_ok_key", None)


# ----------------------------------------------------------------------
# family: determinism (VIA201-VIA205)
# ----------------------------------------------------------------------
PURE = ("pure/",)
WORKER = ("worker/",)


def determinism(project):
    return check_determinism(
        project, pure_prefixes=PURE, worker_prefixes=WORKER
    )


class TestClockRule:
    def test_via201_host_clock_in_pure_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/mod.py": """
                    import time


                    def f():
                        return time.perf_counter()
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA201"]
        assert "host time" in findings[0].message

    def test_via201_wall_clock_in_worker_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/mod.py": """
                    import time
                    from datetime import datetime


                    def f():
                        return time.time(), datetime.now()
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA201", "VIA201"]

    def test_perf_counter_sanctioned_in_worker_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/mod.py": """
                    import time


                    def f():
                        return time.perf_counter(), time.monotonic()
                """
            },
        )
        assert determinism(project) == []

    def test_files_outside_both_scopes_are_not_scanned(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "other/mod.py": """
                    import time


                    def f():
                        return time.time()
                """
            },
        )
        assert determinism(project) == []


class TestRandomnessRule:
    def test_via202_global_rng_entropy_and_unseeded(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/rng.py": """
                    import os
                    import random

                    import numpy as np


                    def f():
                        a = random.random()
                        b = np.random.default_rng()
                        c = os.urandom(8)
                        return a, b, c
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA202"] * 3

    def test_seeded_generators_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/rng.py": """
                    import numpy as np


                    def f(seed):
                        rng = np.random.default_rng(seed)
                        other = np.random.default_rng(seed=seed + 1)
                        return rng.standard_normal(4), other
                """
            },
        )
        assert determinism(project) == []


class TestEnvRule:
    def test_via203_unsanctioned_reads(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/env.py": """
                    import os


                    def f():
                        return os.getenv("PATH"), os.environ["HOME"]
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA203", "VIA203"]
        assert any("'PATH'" in f.message for f in findings)

    def test_repro_namespace_and_writes_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/env.py": """
                    import os


                    def f():
                        a = os.getenv("REPRO_WORKERS")
                        b = os.environ["REPRO_CACHE_DIR"]
                        os.environ["ANYTHING"] = "writes are not reads"
                        return a, b
                """
            },
        )
        assert determinism(project) == []


class TestSetIterationRule:
    def test_via204_direct_set_iteration(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/iter.py": """
                    def f(items):
                        out = []
                        for x in set(items):
                            out.append(x)
                        return [y for y in {1, 2, 3}]
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA204", "VIA204"]
        assert all(f.severity == "warning" for f in findings)

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/iter.py": """
                    def f(items):
                        out = []
                        for x in sorted(set(items)):
                            out.append(x)
                        for y in items:
                            out.append(y)
                        return out
                """
            },
        )
        assert determinism(project) == []


class TestIdKeyRule:
    def test_via205_id_keyed_state(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/ident.py": """
                    def f(obj, cache, memo):
                        cache[id(obj)] = 1
                        memo.setdefault(id(obj), [])
                        return {id(obj): 2}
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA205"] * 3

    def test_stable_keys_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/ident.py": """
                    def f(obj, cache, memo):
                        cache[obj.name] = 1
                        memo.setdefault(obj.key, [])
                        return id(obj)  # computing an id is fine; keying on it is not
                """
            },
        )
        assert determinism(project) == []


# ----------------------------------------------------------------------
# family: locks (VIA301-VIA303)
# ----------------------------------------------------------------------
def locks(project):
    return check_locks(project, prefixes=("svc",))


LOCKED_RACY = """
    import threading


    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._executor = None
            self.flag = False
            self.items = []

        def arm(self):
            with self._lock:
                self.flag = True

        def disarm(self):
            self.flag = False

        def reset(self):
            with self._lock:
                self.items = []

        def kick(self):
            self._executor.submit(self._work)

        def _work(self):
            if self.flag:
                self.items.append(1)
"""


class TestLockRules:
    def test_via301_and_via302_on_mixed_discipline(self, tmp_path):
        project = make_project(tmp_path, {"svc.py": LOCKED_RACY})
        findings = locks(project)
        # flag: unlocked loop write (disarm) + unlocked executor read;
        # items: unlocked executor mutator (append) counts as both
        assert rules_of(findings) == ["VIA301", "VIA301", "VIA302", "VIA302"]
        v301 = [f for f in findings if f.rule == "VIA301"]
        assert {("flag" in f.message, "items" in f.message) for f in v301} == {
            (True, False),
            (False, True),
        }

    def test_consistent_locking_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            with self._lock:
                                return self.flag
                """
            },
        )
        assert locks(project) == []

    def test_lockless_class_is_skipped(self, tmp_path):
        # the rules check discipline *around* a lock; a class without one
        # (or without a thread boundary) is out of scope by design
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    class Svc:
                        def __init__(self):
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            return self.flag
                """
            },
        )
        assert locks(project) == []

    def test_class_without_thread_boundary_is_skipped(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def disarm(self):
                            self.flag = False
                """
            },
        )
        assert locks(project) == []

    def test_reachability_through_helper_methods(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self, loop):
                            self._lock = threading.Lock()
                            self._loop = loop
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._loop.run_in_executor(self._executor, self._work, 1)

                        def _work(self, n):
                            self._helper()

                        def _helper(self):
                            self.flag = False
                """
            },
        )
        findings = locks(project)
        assert "VIA302" in rules_of(findings)
        assert any("_helper" not in f.message and "flag" in f.message for f in findings)

    def test_thread_target_is_an_entry_point(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            threading.Thread(target=self._work).start()

                        def _work(self):
                            return self.flag
                """
            },
        )
        assert rules_of(locks(project)) == ["VIA302"]

    def test_via303_loop_read_of_supervisor_written_state(self, tmp_path):
        # the worker-pool shape: a supervisor thread owns the worker
        # table; a loop-side health() peeking at it lock-free sees torn
        # updates — the mirror image of VIA302
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def health(self):
                            return dict(self.table)
                """
            },
        )
        findings = locks(project)
        assert rules_of(findings) == ["VIA303"]
        assert "table" in findings[0].message

    def test_via303_loop_mutator_on_supervisor_written_container(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def cancel(self, slot):
                            self.table.pop(slot, None)
                """
            },
        )
        assert rules_of(locks(project)) == ["VIA303"]

    def test_via303_clean_when_loop_side_holds_the_lock(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def health(self):
                            with self._lock:
                                return dict(self.table)
                """
            },
        )
        assert locks(project) == []

    def test_init_writes_are_exempt(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._executor = None
                            self.flag = False  # no second thread exists yet

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            with self._lock:
                                return self.flag
                """
            },
        )
        assert locks(project) == []


# ----------------------------------------------------------------------
# family: hotpath (VIA401-VIA402)
# ----------------------------------------------------------------------
def hotpath(project):
    return check_hotpath(
        project, loop_scopes=("hot/core.py",), kernel_scopes=("hot/kern/",)
    )


class TestHotpathRules:
    def test_via401_op_constructed_in_loop(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import GatherOp


                    def narrate(core, rows):
                        for idx in rows:
                            core._emit(GatherOp("a", idx, 1))
                """
            },
        )
        findings = hotpath(project)
        assert rules_of(findings) == ["VIA401"]
        assert "GatherOp" in findings[0].message
        assert findings[0].severity == "error"

    def test_via401_through_module_alias(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    import repro.sim.ops as ops


                    def narrate(core):
                        while core.pending():
                            core._emit(ops.ScalarOpsOp(1))
                """
            },
        )
        assert rules_of(hotpath(project)) == ["VIA401"]

    def test_op_outside_loop_is_clean(self, tmp_path):
        # Core's scalar-fallback branches build one op per *call*, not
        # per loop iteration — that is the supported slow path
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import ScalarOpsOp


                    def scalar_ops(self, count):
                        if self._builder is None:
                            self._emit(ScalarOpsOp(int(count)))
                """
            },
        )
        assert hotpath(project) == []

    def test_nested_function_resets_loop_context(self, tmp_path):
        # a closure *defined* in a loop runs when called, not per
        # iteration of the defining loop
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import AllocOp


                    def build(specs):
                        makers = []
                        for name in specs:
                            def make(n=name):
                                return AllocOp(n, 64, 8)
                            makers.append(make)
                        return makers
                """
            },
        )
        assert hotpath(project) == []

    def test_non_op_calls_in_loops_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    def narrate(core, rows):
                        for idx in rows:
                            core.gather("a", idx)
                            total = int(idx)
                """
            },
        )
        assert hotpath(project) == []

    def test_via402_kernel_builds_op_even_outside_loop(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/kern/spmv.py": """
                    from repro.sim.ops import ViaOpRecord


                    def price(core):
                        core._emit(ViaOpRecord(4, 2, 1.0, None, 1))
                """
            },
        )
        findings = hotpath(project)
        assert rules_of(findings) == ["VIA402"]
        assert "ViaOpRecord" in findings[0].message

    def test_kernel_without_op_construction_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/kern/spmv.py": """
                    def price(core, idx):
                        core.gather("a", idx)
                        core.scalar_ops(3)
                """
            },
        )
        assert hotpath(project) == []

    def test_ignore_comment_silences_via401(self, tmp_path):
        # default scopes: repro/kernels/ is a real hot-path prefix, so
        # this exercises the registered checker end-to-end
        project = make_project(
            tmp_path,
            {
                "repro/kernels/k.py": """
                    from repro.sim.ops import GatherOp


                    def replay(core, rows):
                        for idx in rows:
                            # via: ignore[VIA401, VIA402]
                            core._emit(GatherOp("a", idx, 1))
                """
            },
        )
        report = run_analysis(project, select=["hotpath"])
        assert report.findings == []
        assert rules_of(report.suppressed) == ["VIA401", "VIA402"]


# ----------------------------------------------------------------------
# core machinery: VIA000, suppression, baseline, selection, CLI
# ----------------------------------------------------------------------
CLOCKY = """
    import time

    a = time.time()
"""


class TestCoreMachinery:
    def test_via000_on_syntax_error(self, tmp_path):
        project = make_project(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
        report = run_analysis(project)
        assert rules_of(report.findings) == ["VIA000"]
        assert report.exit_code == 1

    def test_suppression_same_line_and_line_above(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/clocky.py": """
                    import time

                    a = time.time()  # via: ignore[VIA201]
                    # via: ignore[VIA201]
                    b = time.time()
                    c = time.time()
                """
            },
        )
        report = run_analysis(project)
        assert rules_of(report.findings) == ["VIA201"]
        assert len(report.suppressed) == 2

    def test_suppression_wildcard_and_comma_list(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/clocky.py": """
                    import time

                    a = time.time()  # via: ignore[*]
                    b = time.time()  # via: ignore[VIA204, VIA201]
                """
            },
        )
        report = run_analysis(project)
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_baseline_round_trip_is_line_independent(self, tmp_path):
        files = {"repro/sim/clocky.py": CLOCKY}
        report = run_analysis(make_project(tmp_path, files))
        assert len(report.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, report.findings)
        fingerprints = load_baseline(baseline_path)
        assert len(fingerprints) == 1

        # shift the finding to a different line: same rule+path+message
        # must still match the baseline fingerprint
        shifted = {"repro/sim/clocky.py": "\n\n\n" + textwrap.dedent(CLOCKY)}
        report2 = run_analysis(
            make_project(tmp_path, shifted), baseline=fingerprints
        )
        assert report2.findings == []
        assert len(report2.baselined) == 1
        assert report2.exit_code == 0

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_warnings_do_not_fail_the_gate(self, tmp_path):
        project = make_project(
            tmp_path,
            {"repro/sim/iter.py": "for x in {1, 2}:\n    print(x)\n"},
        )
        report = run_analysis(project, select=["VIA204"])
        assert rules_of(report.findings) == ["VIA204"]
        assert report.errors == []
        assert report.exit_code == 0

    def test_selection_expands_families(self):
        selected = resolve_selection(["determinism"])
        assert selected == {"VIA201", "VIA202", "VIA203", "VIA204", "VIA205"}
        assert resolve_selection(["VIA101"]) == {"VIA101"}
        assert resolve_selection(None) is None
        with pytest.raises(ValueError):
            resolve_selection(["no-such-family"])

    def test_every_family_has_a_registered_checker(self):
        assert {info.family for info in RULES.values()} == set(FAMILY_CHECKERS)


class TestCli:
    def _tree(self, tmp_path):
        make_project(tmp_path, {"repro/sim/clocky.py": CLOCKY})
        return [str(tmp_path), "--root", str(tmp_path)]

    def test_findings_exit_1_human_output(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "VIA201" in out
        assert "1 finding(s) (1 error(s))" in out

    def test_json_output_parses(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "VIA201"
        assert payload["findings"][0]["fingerprint"]

    def test_rule_selection_scopes_the_run(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--rules", "keys,locks"]) == 0

    def test_unknown_selection_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_no_files_is_a_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main([str(empty)]) == 2

    def test_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        argv = self._tree(tmp_path) + ["--baseline", str(tmp_path / "no.json")]
        assert cli_main(argv) == 2

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        argv = self._tree(tmp_path)
        assert cli_main(argv + ["--write-baseline", str(baseline)]) == 0
        assert cli_main(argv + ["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_list_rules_covers_every_id(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out
