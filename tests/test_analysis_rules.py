"""The analyzer analyzed: seeded-violation fixtures for every rule id.

Each rule gets at least one true-positive fixture (the violation is
reported) and one clean fixture (no false positive), written to a tmp
tree and scanned through the same :class:`~repro.analysis.core.Project`
machinery the CLI uses.  Family checkers take their scopes as
parameters, so fixtures live under neutral prefixes instead of
pretending to be ``repro.sim``.  Suppression comments, baseline files,
selection, and the CLI's exit-code contract are covered at the end.
"""

import json
import sys
import textwrap

import pytest

from repro.analysis.cli import main as cli_main
from repro.analysis.core import (
    FAMILY_CHECKERS,
    RULES,
    Project,
    load_baseline,
    resolve_selection,
    run_analysis,
    save_baseline,
)
from repro.analysis.determinism import check_determinism
from repro.analysis.dtypes import check_dtypes
from repro.analysis.errorflow import check_errorflow
from repro.analysis.hotpath import check_hotpath
from repro.analysis.keys import KeyBinding, assert_key_hygiene, check_keys
from repro.analysis.lifecycle import check_lifecycle
from repro.analysis.locks import check_locks
from repro.errors import ConfigError


def make_project(tmp_path, files):
    """Write ``{rel: source}`` fixtures and return a Project rooted there."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Project([tmp_path], root=tmp_path)


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# family: keys (VIA100-VIA103)
# ----------------------------------------------------------------------
DC_TWO_FIELDS = """
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Cfg:
        alpha: int
        beta: int
"""


def binding(**kw):
    base = dict(
        dataclass_module="dcmod",
        dataclass_name="Cfg",
        key_module="keymod",
        key_qualname="make_key",
        root="cfg",
    )
    base.update(kw)
    return (KeyBinding(**base),)


class TestKeyRules:
    def test_via101_unconsumed_field(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    def make_key(cfg):
                        return {"alpha": cfg.alpha}
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA101"]
        assert "Cfg.beta" in findings[0].message
        assert findings[0].path == "dcmod.py"
        assert findings[0].severity == "error"

    def test_no_false_positive_when_all_fields_consumed(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_asdict_consumes_everything(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    from dataclasses import asdict


                    def make_key(cfg):
                        return asdict(cfg)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_exemption_silences_via101(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"beta": "pricing-only knob"}}


                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        assert check_keys(project, bindings=binding()) == []

    def test_via102_stale_exemption(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"gamma": "no such field"}}


                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA102"]
        assert "Cfg.gamma" in findings[0].message
        assert findings[0].path == "keymod.py"

    def test_via103_exempt_but_consumed_is_a_warning(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": """
                    KEY_EXEMPT = {"Cfg": {"alpha": "stale justification"}}


                    def make_key(cfg):
                        return (cfg.alpha, cfg.beta)
                """,
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA103"]
        assert findings[0].severity == "warning"

    def test_via100_dataclass_renamed_away(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": "def make_key(cfg):\n    return (cfg.alpha,)\n",
            },
        )
        findings = check_keys(
            project, bindings=binding(dataclass_name="Renamed")
        )
        assert rules_of(findings) == ["VIA100"]

    def test_via100_key_builder_renamed_away(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": DC_TWO_FIELDS,
                "keymod.py": "def other_name(cfg):\n    return (cfg.alpha,)\n",
            },
        )
        findings = check_keys(project, bindings=binding())
        assert rules_of(findings) == ["VIA100"]

    def test_attr_path_scopes_consumption_to_the_sub_object(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "dcmod.py": """
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class Sub:
                        x: int
                        y: int
                """,
                "keymod.py": """
                    def make_key(cfg):
                        return (cfg.sub.x,)
                """,
            },
        )
        findings = check_keys(
            project,
            bindings=binding(dataclass_name="Sub", attr_path=("sub",)),
        )
        assert rules_of(findings) == ["VIA101"]
        assert "Sub.y" in findings[0].message

    def test_method_qualname_binding(self, tmp_path):
        # the JobSpec.batch_key shape: the dataclass keys itself
        project = make_project(
            tmp_path,
            {
                "dcmod.py": """
                    from dataclasses import dataclass


                    @dataclass
                    class Cfg:
                        alpha: int
                        beta: int

                        def key(self):
                            return (self.alpha,)
                """,
            },
        )
        findings = check_keys(
            project,
            bindings=binding(
                key_module="dcmod", key_qualname="Cfg.key", root="self"
            ),
        )
        assert rules_of(findings) == ["VIA101"]
        assert "Cfg.beta" in findings[0].message

    def test_binding_outside_the_file_set_is_skipped(self, tmp_path):
        project = make_project(tmp_path, {"unrelated.py": "VALUE = 1\n"})
        assert check_keys(project, bindings=binding()) == []


class TestRuntimeKeyHygiene:
    def _install(self, tmp_path, monkeypatch, modules):
        monkeypatch.syspath_prepend(str(tmp_path))
        for name, source in modules.items():
            (tmp_path / f"{name}.py").write_text(
                textwrap.dedent(source), encoding="utf-8"
            )
            sys.modules.pop(name, None)
        import importlib

        importlib.invalidate_caches()

    def test_live_drift_fails_fast(self, tmp_path, monkeypatch):
        self._install(
            tmp_path,
            monkeypatch,
            {
                "via_hyg_bad_dc": DC_TWO_FIELDS,
                "via_hyg_bad_key": """
                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        bindings = binding(
            dataclass_module="via_hyg_bad_dc", key_module="via_hyg_bad_key"
        )
        try:
            with pytest.raises(ConfigError, match="VIA101.*Cfg\\.beta"):
                assert_key_hygiene(bindings)
        finally:
            sys.modules.pop("via_hyg_bad_dc", None)
            sys.modules.pop("via_hyg_bad_key", None)

    def test_live_clean_passes(self, tmp_path, monkeypatch):
        self._install(
            tmp_path,
            monkeypatch,
            {
                "via_hyg_ok_dc": DC_TWO_FIELDS,
                "via_hyg_ok_key": """
                    KEY_EXEMPT = {"Cfg": {"beta": "pricing-only knob"}}


                    def make_key(cfg):
                        return (cfg.alpha,)
                """,
            },
        )
        bindings = binding(
            dataclass_module="via_hyg_ok_dc", key_module="via_hyg_ok_key"
        )
        try:
            assert_key_hygiene(bindings)  # must not raise
        finally:
            sys.modules.pop("via_hyg_ok_dc", None)
            sys.modules.pop("via_hyg_ok_key", None)


# ----------------------------------------------------------------------
# family: determinism (VIA201-VIA205)
# ----------------------------------------------------------------------
PURE = ("pure/",)
WORKER = ("worker/",)


def determinism(project):
    return check_determinism(
        project, pure_prefixes=PURE, worker_prefixes=WORKER
    )


class TestClockRule:
    def test_via201_host_clock_in_pure_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/mod.py": """
                    import time


                    def f():
                        return time.perf_counter()
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA201"]
        assert "host time" in findings[0].message

    def test_via201_wall_clock_in_worker_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/mod.py": """
                    import time
                    from datetime import datetime


                    def f():
                        return time.time(), datetime.now()
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA201", "VIA201"]

    def test_perf_counter_sanctioned_in_worker_scope(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/mod.py": """
                    import time


                    def f():
                        return time.perf_counter(), time.monotonic()
                """
            },
        )
        assert determinism(project) == []

    def test_files_outside_both_scopes_are_not_scanned(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "other/mod.py": """
                    import time


                    def f():
                        return time.time()
                """
            },
        )
        assert determinism(project) == []


class TestRandomnessRule:
    def test_via202_global_rng_entropy_and_unseeded(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/rng.py": """
                    import os
                    import random

                    import numpy as np


                    def f():
                        a = random.random()
                        b = np.random.default_rng()
                        c = os.urandom(8)
                        return a, b, c
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA202"] * 3

    def test_seeded_generators_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/rng.py": """
                    import numpy as np


                    def f(seed):
                        rng = np.random.default_rng(seed)
                        other = np.random.default_rng(seed=seed + 1)
                        return rng.standard_normal(4), other
                """
            },
        )
        assert determinism(project) == []


class TestEnvRule:
    def test_via203_unsanctioned_reads(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/env.py": """
                    import os


                    def f():
                        return os.getenv("PATH"), os.environ["HOME"]
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA203", "VIA203"]
        assert any("'PATH'" in f.message for f in findings)

    def test_repro_namespace_and_writes_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker/env.py": """
                    import os


                    def f():
                        a = os.getenv("REPRO_WORKERS")
                        b = os.environ["REPRO_CACHE_DIR"]
                        os.environ["ANYTHING"] = "writes are not reads"
                        return a, b
                """
            },
        )
        assert determinism(project) == []


class TestSetIterationRule:
    def test_via204_direct_set_iteration(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/iter.py": """
                    def f(items):
                        out = []
                        for x in set(items):
                            out.append(x)
                        return [y for y in {1, 2, 3}]
                """
            },
        )
        findings = determinism(project)
        assert rules_of(findings) == ["VIA204", "VIA204"]
        assert all(f.severity == "warning" for f in findings)

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/iter.py": """
                    def f(items):
                        out = []
                        for x in sorted(set(items)):
                            out.append(x)
                        for y in items:
                            out.append(y)
                        return out
                """
            },
        )
        assert determinism(project) == []


class TestIdKeyRule:
    def test_via205_id_keyed_state(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/ident.py": """
                    def f(obj, cache, memo):
                        cache[id(obj)] = 1
                        memo.setdefault(id(obj), [])
                        return {id(obj): 2}
                """
            },
        )
        assert rules_of(determinism(project)) == ["VIA205"] * 3

    def test_stable_keys_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pure/ident.py": """
                    def f(obj, cache, memo):
                        cache[obj.name] = 1
                        memo.setdefault(obj.key, [])
                        return id(obj)  # computing an id is fine; keying on it is not
                """
            },
        )
        assert determinism(project) == []


# ----------------------------------------------------------------------
# family: locks (VIA301-VIA303)
# ----------------------------------------------------------------------
def locks(project):
    return check_locks(project, prefixes=("svc",))


LOCKED_RACY = """
    import threading


    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._executor = None
            self.flag = False
            self.items = []

        def arm(self):
            with self._lock:
                self.flag = True

        def disarm(self):
            self.flag = False

        def reset(self):
            with self._lock:
                self.items = []

        def kick(self):
            self._executor.submit(self._work)

        def _work(self):
            if self.flag:
                self.items.append(1)
"""


class TestLockRules:
    def test_via301_and_via302_on_mixed_discipline(self, tmp_path):
        project = make_project(tmp_path, {"svc.py": LOCKED_RACY})
        findings = locks(project)
        # flag: unlocked loop write (disarm) + unlocked executor read;
        # items: unlocked executor mutator (append) counts as both
        assert rules_of(findings) == ["VIA301", "VIA301", "VIA302", "VIA302"]
        v301 = [f for f in findings if f.rule == "VIA301"]
        assert {("flag" in f.message, "items" in f.message) for f in v301} == {
            (True, False),
            (False, True),
        }

    def test_consistent_locking_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            with self._lock:
                                return self.flag
                """
            },
        )
        assert locks(project) == []

    def test_lockless_class_is_skipped(self, tmp_path):
        # the rules check discipline *around* a lock; a class without one
        # (or without a thread boundary) is out of scope by design
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    class Svc:
                        def __init__(self):
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            return self.flag
                """
            },
        )
        assert locks(project) == []

    def test_class_without_thread_boundary_is_skipped(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def disarm(self):
                            self.flag = False
                """
            },
        )
        assert locks(project) == []

    def test_reachability_through_helper_methods(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self, loop):
                            self._lock = threading.Lock()
                            self._loop = loop
                            self._executor = None
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._loop.run_in_executor(self._executor, self._work, 1)

                        def _work(self, n):
                            self._helper()

                        def _helper(self):
                            self.flag = False
                """
            },
        )
        findings = locks(project)
        assert "VIA302" in rules_of(findings)
        assert any("_helper" not in f.message and "flag" in f.message for f in findings)

    def test_thread_target_is_an_entry_point(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.flag = False

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            threading.Thread(target=self._work).start()

                        def _work(self):
                            return self.flag
                """
            },
        )
        assert rules_of(locks(project)) == ["VIA302"]

    def test_via303_loop_read_of_supervisor_written_state(self, tmp_path):
        # the worker-pool shape: a supervisor thread owns the worker
        # table; a loop-side health() peeking at it lock-free sees torn
        # updates — the mirror image of VIA302
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def health(self):
                            return dict(self.table)
                """
            },
        )
        findings = locks(project)
        assert rules_of(findings) == ["VIA303"]
        assert "table" in findings[0].message

    def test_via303_loop_mutator_on_supervisor_written_container(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def cancel(self, slot):
                            self.table.pop(slot, None)
                """
            },
        )
        assert rules_of(locks(project)) == ["VIA303"]

    def test_via303_clean_when_loop_side_holds_the_lock(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Pool:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.table = {}

                        def start(self):
                            threading.Thread(target=self._supervise).start()

                        def _supervise(self):
                            with self._lock:
                                self.table[1] = "up"

                        def health(self):
                            with self._lock:
                                return dict(self.table)
                """
            },
        )
        assert locks(project) == []

    def test_init_writes_are_exempt(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc.py": """
                    import threading


                    class Svc:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._executor = None
                            self.flag = False  # no second thread exists yet

                        def arm(self):
                            with self._lock:
                                self.flag = True

                        def kick(self):
                            self._executor.submit(self._work)

                        def _work(self):
                            with self._lock:
                                return self.flag
                """
            },
        )
        assert locks(project) == []


# ----------------------------------------------------------------------
# family: hotpath (VIA401-VIA402)
# ----------------------------------------------------------------------
def hotpath(project):
    return check_hotpath(
        project, loop_scopes=("hot/core.py",), kernel_scopes=("hot/kern/",)
    )


class TestHotpathRules:
    def test_via401_op_constructed_in_loop(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import GatherOp


                    def narrate(core, rows):
                        for idx in rows:
                            core._emit(GatherOp("a", idx, 1))
                """
            },
        )
        findings = hotpath(project)
        assert rules_of(findings) == ["VIA401"]
        assert "GatherOp" in findings[0].message
        assert findings[0].severity == "error"

    def test_via401_through_module_alias(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    import repro.sim.ops as ops


                    def narrate(core):
                        while core.pending():
                            core._emit(ops.ScalarOpsOp(1))
                """
            },
        )
        assert rules_of(hotpath(project)) == ["VIA401"]

    def test_op_outside_loop_is_clean(self, tmp_path):
        # Core's scalar-fallback branches build one op per *call*, not
        # per loop iteration — that is the supported slow path
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import ScalarOpsOp


                    def scalar_ops(self, count):
                        if self._builder is None:
                            self._emit(ScalarOpsOp(int(count)))
                """
            },
        )
        assert hotpath(project) == []

    def test_nested_function_resets_loop_context(self, tmp_path):
        # a closure *defined* in a loop runs when called, not per
        # iteration of the defining loop
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    from repro.sim.ops import AllocOp


                    def build(specs):
                        makers = []
                        for name in specs:
                            def make(n=name):
                                return AllocOp(n, 64, 8)
                            makers.append(make)
                        return makers
                """
            },
        )
        assert hotpath(project) == []

    def test_non_op_calls_in_loops_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/core.py": """
                    def narrate(core, rows):
                        for idx in rows:
                            core.gather("a", idx)
                            total = int(idx)
                """
            },
        )
        assert hotpath(project) == []

    def test_via402_kernel_builds_op_even_outside_loop(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/kern/spmv.py": """
                    from repro.sim.ops import ViaOpRecord


                    def price(core):
                        core._emit(ViaOpRecord(4, 2, 1.0, None, 1))
                """
            },
        )
        findings = hotpath(project)
        assert rules_of(findings) == ["VIA402"]
        assert "ViaOpRecord" in findings[0].message

    def test_kernel_without_op_construction_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "hot/kern/spmv.py": """
                    def price(core, idx):
                        core.gather("a", idx)
                        core.scalar_ops(3)
                """
            },
        )
        assert hotpath(project) == []

    def test_ignore_comment_silences_via401(self, tmp_path):
        # default scopes: repro/kernels/ is a real hot-path prefix, so
        # this exercises the registered checker end-to-end
        project = make_project(
            tmp_path,
            {
                "repro/kernels/k.py": """
                    from repro.sim.ops import GatherOp


                    def replay(core, rows):
                        for idx in rows:
                            # via: ignore[VIA401, VIA402]
                            core._emit(GatherOp("a", idx, 1))
                """
            },
        )
        report = run_analysis(project, select=["hotpath"])
        assert report.findings == []
        assert rules_of(report.suppressed) == ["VIA401", "VIA402"]


# ----------------------------------------------------------------------
# core machinery: VIA000, suppression, baseline, selection, CLI
# ----------------------------------------------------------------------
CLOCKY = """
    import time

    a = time.time()
"""


class TestCoreMachinery:
    def test_via000_on_syntax_error(self, tmp_path):
        project = make_project(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
        report = run_analysis(project)
        assert rules_of(report.findings) == ["VIA000"]
        assert report.exit_code == 1

    def test_suppression_same_line_and_line_above(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/clocky.py": """
                    import time

                    a = time.time()  # via: ignore[VIA201]
                    # via: ignore[VIA201]
                    b = time.time()
                    c = time.time()
                """
            },
        )
        report = run_analysis(project)
        assert rules_of(report.findings) == ["VIA201"]
        assert len(report.suppressed) == 2

    def test_suppression_wildcard_and_comma_list(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/clocky.py": """
                    import time

                    a = time.time()  # via: ignore[*]
                    b = time.time()  # via: ignore[VIA204, VIA201]
                """
            },
        )
        report = run_analysis(project)
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_baseline_round_trip_is_line_independent(self, tmp_path):
        files = {"repro/sim/clocky.py": CLOCKY}
        report = run_analysis(make_project(tmp_path, files))
        assert len(report.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, report.findings)
        fingerprints = load_baseline(baseline_path)
        assert len(fingerprints) == 1

        # shift the finding to a different line: same rule+path+message
        # must still match the baseline fingerprint
        shifted = {"repro/sim/clocky.py": "\n\n\n" + textwrap.dedent(CLOCKY)}
        report2 = run_analysis(
            make_project(tmp_path, shifted), baseline=fingerprints
        )
        assert report2.findings == []
        assert len(report2.baselined) == 1
        assert report2.exit_code == 0

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_warnings_do_not_fail_the_gate(self, tmp_path):
        project = make_project(
            tmp_path,
            {"repro/sim/iter.py": "for x in {1, 2}:\n    print(x)\n"},
        )
        report = run_analysis(project, select=["VIA204"])
        assert rules_of(report.findings) == ["VIA204"]
        assert report.errors == []
        assert report.exit_code == 0

    def test_selection_expands_families(self):
        selected = resolve_selection(["determinism"])
        assert selected == {"VIA201", "VIA202", "VIA203", "VIA204", "VIA205"}
        assert resolve_selection(["VIA101"]) == {"VIA101"}
        assert resolve_selection(None) is None
        with pytest.raises(ValueError):
            resolve_selection(["no-such-family"])

    def test_every_family_has_a_registered_checker(self):
        assert {info.family for info in RULES.values()} == set(FAMILY_CHECKERS)


class TestCli:
    def _tree(self, tmp_path):
        make_project(tmp_path, {"repro/sim/clocky.py": CLOCKY})
        return [str(tmp_path), "--root", str(tmp_path)]

    def test_findings_exit_1_human_output(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "VIA201" in out
        assert "1 finding(s) (1 error(s))" in out

    def test_json_output_parses(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "VIA201"
        assert payload["findings"][0]["fingerprint"]

    def test_rule_selection_scopes_the_run(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--rules", "keys,locks"]) == 0

    def test_unknown_selection_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(self._tree(tmp_path) + ["--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_no_files_is_a_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main([str(empty)]) == 2

    def test_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        argv = self._tree(tmp_path) + ["--baseline", str(tmp_path / "no.json")]
        assert cli_main(argv) == 2

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        argv = self._tree(tmp_path)
        assert cli_main(argv + ["--write-baseline", str(baseline)]) == 0
        assert cli_main(argv + ["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_list_rules_covers_every_id(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


# ----------------------------------------------------------------------
# family: lifecycle (VIA501-VIA504)
# ----------------------------------------------------------------------
def lifecycle(project):
    return check_lifecycle(project, prefixes=("svc",))


class TestLifecycleRules:
    def test_via501_open_at_normal_exit(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/leak.py": """
                    from multiprocessing import Pipe


                    def leaky():
                        parent, child = Pipe()
                        child.close()
                        return None
                """
            },
        )
        findings = lifecycle(project)
        assert rules_of(findings) == ["VIA501"]
        assert "parent" in findings[0].message

    def test_clean_when_closed_or_returned(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/ok.py": """
                    from multiprocessing import Pipe


                    def closed():
                        parent, child = Pipe()
                        parent.close()
                        child.close()


                    def handed_to_caller():
                        parent, child = Pipe()
                        child.close()
                        return parent
                """
            },
        )
        assert lifecycle(project) == []

    def test_via502_exception_edge_leak(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/risky.py": """
                    def risky(step):
                        f = open("x")
                        step()
                        f.close()
                """
            },
        )
        findings = lifecycle(project)
        assert rules_of(findings) == ["VIA502"]
        assert "exception escapes" in findings[0].message

    def test_clean_with_finally_or_with(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/ok.py": """
                    def guarded(step):
                        f = open("x")
                        try:
                            step()
                        finally:
                            f.close()


                    def managed(step):
                        with open("x") as f:
                            step()
                """
            },
        )
        assert lifecycle(project) == []

    def test_clean_when_handler_closes_before_reraise(self, tmp_path):
        # the shape the pool/supervisor fixes use: close on BaseException,
        # then re-raise — no path leaves the resource open
        project = make_project(
            tmp_path,
            {
                "svc/ok.py": """
                    from multiprocessing import Pipe


                    def spawn(arm):
                        parent, child = Pipe()
                        try:
                            arm()
                        except BaseException:
                            parent.close()
                            child.close()
                            raise
                        child.close()
                        return parent
                """
            },
        )
        assert lifecycle(project) == []

    def test_via502_comprehension_acquisition(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/comp.py": """
                    from multiprocessing import Pipe


                    def many(n):
                        conns = [Pipe() for _ in range(n)]
                        return conns
                """
            },
        )
        findings = lifecycle(project)
        assert rules_of(findings) == ["VIA502"]
        assert "comprehension" in findings[0].message

    def test_via501_started_process_without_join(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/proc.py": """
                    def spawn_and_forget(ctx, work):
                        p = ctx.Process(target=work)
                        p.start()


                    def spawn_joined(ctx, work):
                        p = ctx.Process(target=work)
                        p.start()
                        p.join()
                """
            },
        )
        findings = lifecycle(project)
        assert rules_of(findings) == ["VIA501"]
        assert "spawn_and_forget" in findings[0].message

    def test_failed_start_acquires_nothing(self, tmp_path):
        # start() raising means there is no process to join — the
        # exception edge must carry the pre-start state
        project = make_project(
            tmp_path,
            {
                "svc/proc.py": """
                    def spawn(ctx, work):
                        p = ctx.Process(target=work)
                        p.start()
                        p.join()
                """
            },
        )
        assert lifecycle(project) == []

    def test_owner_class_constructor_is_an_acquisition(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/handle.py": """
                    from multiprocessing import Pipe


                    class Handle:
                        def __init__(self):
                            self.a, self.b = Pipe()

                        def close(self):
                            self.a.close()
                            self.b.close()


                    def leaky(step):
                        h = Handle()
                        step()
                        h.close()
                """
            },
        )
        findings = lifecycle(project)
        assert [f for f in findings if f.rule == "VIA502"]
        assert any("instance of Handle" in f.message for f in findings)

    def test_via503_rebind_while_open(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/rebind.py": """
                    def shadow():
                        f = open("x")
                        f = open("y")
                        f.close()
                """
            },
        )
        findings = lifecycle(project)
        assert "VIA503" in rules_of(findings)
        via503 = [f for f in findings if f.rule == "VIA503"]
        assert "rebound" in via503[0].message

    def test_via504_use_after_close(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/reuse.py": """
                    def reuse():
                        f = open("x")
                        f.close()
                        f.read()
                """
            },
        )
        findings = lifecycle(project)
        assert rules_of(findings) == ["VIA504"]

    def test_repeated_close_is_not_a_use_after_close(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "svc/double.py": """
                    def double():
                        f = open("x")
                        f.close()
                        f.close()
                """
            },
        )
        assert lifecycle(project) == []


# ----------------------------------------------------------------------
# family: errorflow (VIA601-VIA603)
# ----------------------------------------------------------------------
JOBS_ANCHOR = """
    class ServeError(Exception):
        pass


    class QueueFull(ServeError):
        pass


    def error_payload(exc):
        if isinstance(exc, QueueFull):
            return {"code": "queue_full"}
        if isinstance(exc, ServeError):
            return {"code": "serve"}
        return {"code": "internal"}
"""


class TestErrorflowRules:
    def test_via601_unmapped_raise(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": JOBS_ANCHOR,
                "repro/serve/handlers.py": """
                    def handle(spec):
                        if not spec:
                            raise ValueError("empty spec")
                """,
            },
        )
        findings = check_errorflow(project)
        assert rules_of(findings) == ["VIA601"]
        assert "ValueError" in findings[0].message

    def test_mapped_subclass_and_helper_raises_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": JOBS_ANCHOR,
                "repro/serve/handlers.py": """
                    from repro.serve.jobs import QueueFull, ServeError


                    class RateLimited(ServeError):
                        pass


                    def _bad_spec(reason):
                        return ServeError(reason)


                    def handle(spec):
                        if spec is None:
                            raise _bad_spec("missing")
                        if spec == "full":
                            raise QueueFull("later")
                        if spec == "limit":
                            raise RateLimited("slow down")
                        try:
                            return spec()
                        except ServeError as exc:
                            raise exc
                """,
            },
        )
        assert check_errorflow(project) == []

    def test_transport_teardown_and_unresolvable_are_skipped(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": JOBS_ANCHOR,
                "repro/serve/handlers.py": """
                    def drop(make_error):
                        raise ConnectionResetError from None


                    def dynamic(make_error):
                        raise make_error()
                """,
            },
        )
        assert check_errorflow(project) == []

    def test_via602_broad_swallow(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": JOBS_ANCHOR,
                "repro/serve/handlers.py": """
                    def quiet(step):
                        try:
                            step()
                        except Exception:
                            pass
                """,
            },
        )
        findings = check_errorflow(project)
        assert rules_of(findings) == ["VIA602"]
        assert findings[0].severity == "warning"

    def test_broad_handler_that_logs_or_reraises_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": JOBS_ANCHOR,
                "repro/serve/handlers.py": """
                    import logging

                    log = logging.getLogger(__name__)


                    def noisy(step):
                        try:
                            step()
                        except Exception as exc:
                            log.warning("step failed: %s", exc)


                    def strict(step):
                        try:
                            step()
                        except Exception:
                            raise
                """,
            },
        )
        assert check_errorflow(project) == []

    def test_via603_unextractable_anchor(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/jobs.py": """
                    PAYLOADS = {}


                    def error_payload(exc):
                        return PAYLOADS.get(type(exc).__name__)
                """,
            },
        )
        findings = check_errorflow(project)
        assert rules_of(findings) == ["VIA603"]

    def test_family_skips_without_anchor_module(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/serve/handlers.py": """
                    def handle():
                        raise ValueError("unchecked without the anchor")
                """,
            },
        )
        assert check_errorflow(project) == []


# ----------------------------------------------------------------------
# family: dtypes (VIA701-VIA703)
# ----------------------------------------------------------------------
def dtypes_of(project):
    return check_dtypes(project, scopes=("kern",))


class TestDtypeRules:
    def test_via701_true_division_on_int_array(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def price(n):
                        cycles = np.zeros(n, dtype=np.int64)
                        return cycles / 2
                """
            },
        )
        findings = dtypes_of(project)
        assert rules_of(findings) == ["VIA701"]
        assert "float64" in findings[0].message

    def test_floor_division_and_explicit_astype_are_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def price(n):
                        cycles = np.zeros(n, dtype=np.int64)
                        halves = cycles // 2
                        ratio = cycles.astype(float) / 2
                        return halves, ratio
                """
            },
        )
        assert dtypes_of(project) == []

    def test_via702_mean_without_dtype(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def summarize(n):
                        cycles = np.arange(n).astype(np.int64)
                        return np.mean(cycles)
                """
            },
        )
        findings = dtypes_of(project)
        assert rules_of(findings) == ["VIA702"]

    def test_mean_with_explicit_dtype_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def summarize(n):
                        cycles = np.arange(n).astype(np.int64)
                        return np.mean(cycles, dtype=np.float64)
                """
            },
        )
        assert dtypes_of(project) == []

    def test_via703_float_literal_in_int_arithmetic(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def scale(n):
                        cycles = np.zeros(n, dtype=np.int64)
                        return cycles * 1.5
                """
            },
        )
        findings = dtypes_of(project)
        assert rules_of(findings) == ["VIA703"]

    def test_must_analysis_drops_intness_at_joins(self, tmp_path):
        # one branch promotes deliberately: after the join the var is no
        # longer provably int, so the division must not be flagged
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    import numpy as np


                    def maybe_promote(n, flag):
                        xs = np.zeros(n, dtype=np.int64)
                        if flag:
                            xs = xs.astype(float)
                        return xs / 2
                """
            },
        )
        assert dtypes_of(project) == []

    def test_plain_python_numbers_never_seed(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "kern/cols.py": """
                    def ratio(total, count):
                        share = total / count
                        return share * 1.5
                """
            },
        )
        assert dtypes_of(project) == []


# ----------------------------------------------------------------------
# meta-rule: VIA001 (useless suppression) + timings
# ----------------------------------------------------------------------
class TestUselessSuppression:
    def test_via001_on_stale_comment(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/tidy.py": """
                    import time  # via: ignore[VIA201]

                    def now():
                        return 42
                """
            },
        )
        report = run_analysis(project)
        assert rules_of(report.findings) == ["VIA001"]
        assert "VIA201" in report.findings[0].message

    def test_used_suppression_is_not_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/sim/clocky.py": """
                    import time

                    a = time.time()  # via: ignore[VIA201]
                """
            },
        )
        report = run_analysis(project)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_selected_runs_never_emit_via001(self, tmp_path):
        # a scoped run cannot tell used from stale — only the full run
        # sees every family's findings, so only it may judge comments
        project = make_project(
            tmp_path,
            {
                "repro/sim/tidy.py": """
                    import time  # via: ignore[VIA201]

                    def now():
                        return 42
                """
            },
        )
        report = run_analysis(project, select=["determinism"])
        assert report.findings == []


class TestTimings:
    def test_report_carries_per_family_timings(self, tmp_path):
        project = make_project(tmp_path, {"repro/sim/clocky.py": CLOCKY})
        report = run_analysis(project)
        assert set(FAMILY_CHECKERS) <= set(report.timings)
        assert report.total_seconds >= 0.0

    def test_cli_timings_flag_prints_table(self, tmp_path, capsys):
        make_project(tmp_path, {"repro/sim/ok.py": "x = 1\n"})
        argv = [str(tmp_path), "--root", str(tmp_path), "--timings"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "rule-family timings" in out
        assert "lifecycle" in out

    def test_cli_max_seconds_budget_breach_fails(self, tmp_path, capsys):
        make_project(tmp_path, {"repro/sim/ok.py": "x = 1\n"})
        base = [str(tmp_path), "--root", str(tmp_path)]
        assert cli_main(base + ["--max-seconds", "0"]) == 1
        assert "budget" in capsys.readouterr().err
        assert cli_main(base + ["--max-seconds", "60"]) == 0
