"""Fault-injection tests for the sweep runner.

Two failure classes the runner must degrade gracefully under:

* **kernel faults** — a unit that raises mid-sweep becomes a recorded
  :class:`UnitFailure` (with traceback) and the sweep completes with every
  other record intact, sequentially and under a worker pool;
* **cache rot** — a truncated, garbled, or tampered cache entry is
  detected by the integrity checks, dropped, and recomputed — never
  served.
"""

import json
import os

import pytest

from repro.errors import SweepError
from repro.eval import (
    ResultCache,
    RunnerConfig,
    WorkUnit,
    run_units,
    spmv_units,
    unit_cache_key,
)
from repro.eval import units as units_mod
from repro.eval.runner import code_version
from repro.matrices import MatrixSpec, small_collection

pytestmark = pytest.mark.smoke


def _explode(unit: WorkUnit):
    raise RuntimeError(f"injected kernel fault for {unit.spec.name}")


@pytest.fixture(autouse=True)
def _boom_kind():
    """Register a unit kind that always raises; fork-based workers inherit
    the registry, so the injection reaches pool processes too."""
    units_mod.UNIT_KINDS["boom"] = _explode
    yield
    units_mod.UNIT_KINDS.pop("boom", None)


def _mixed_units():
    coll = small_collection(3, seed=21, max_n=128)
    good = spmv_units(coll, formats=("csr",))
    bad = WorkUnit("boom", MatrixSpec("poison", "random", 64, 1, {}))
    return [good[0], bad, good[1], good[2]]


class TestKernelFaults:
    def test_failure_is_recorded_and_sweep_completes(self):
        result = run_units(_mixed_units(), RunnerConfig())
        assert len(result.records) == 3
        assert [f.name for f in result.failures] == ["poison"]
        failure = result.failures[0]
        assert failure.index == 1 and failure.kind == "boom"
        assert "injected kernel fault" in failure.error
        assert "RuntimeError" in failure.traceback
        assert result.counters.units_failed == 1
        assert result.counters.units_ok == 3

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork workers")
    def test_failure_is_recorded_under_worker_pool(self):
        result = run_units(_mixed_units(), RunnerConfig(workers=2))
        assert len(result.records) == 3
        assert [f.name for f in result.failures] == ["poison"]

    def test_failure_lands_in_journal(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_units(
            _mixed_units(), RunnerConfig(journal_path=str(journal))
        )
        lines = [json.loads(l) for l in journal.read_text().splitlines()]
        assert len(lines) == 4
        failed = [l for l in lines if l["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["name"] == "poison"
        assert "injected kernel fault" in failed[0]["error"]

    def test_failures_never_poison_the_cache(self, tmp_path):
        """A failed unit must be retried next run, not served as a hit."""
        config = RunnerConfig(cache_dir=str(tmp_path / "c"))
        first = run_units(_mixed_units(), config)
        assert first.counters.units_failed == 1
        second = run_units(_mixed_units(), config)
        assert second.counters.units_failed == 1  # retried, failed again
        assert second.counters.cache_hits == 3  # the good units hit

    def test_strict_mode_raises_like_the_sequential_path(self):
        with pytest.raises(SweepError, match="injected kernel fault"):
            run_units(_mixed_units(), RunnerConfig(capture_errors=False))

    def test_unknown_kind_is_a_recorded_failure(self):
        unit = WorkUnit("no-such-kernel", MatrixSpec("x", "random", 64, 1, {}))
        result = run_units([unit], RunnerConfig())
        assert result.records == []
        assert len(result.failures) == 1
        assert "no-such-kernel" in result.failures[0].error


class TestCacheRot:
    @pytest.fixture
    def warmed(self, tmp_path):
        coll = small_collection(2, seed=31, max_n=128)
        units = spmv_units(coll, formats=("csr",))
        config = RunnerConfig(cache_dir=str(tmp_path / "c"))
        baseline = run_units(units, config)
        cache = ResultCache(config.cache_dir)
        key = unit_cache_key(units[0], code_version())
        path = cache._path(key)
        assert path.exists()
        return units, config, baseline, path

    def _assert_recomputed(self, units, config, baseline):
        result = run_units(units, config)
        assert result.counters.cache_corrupt == 1
        assert result.counters.cache_hits == len(units) - 1
        assert result.counters.units_ok == 1
        assert result.records == baseline.records  # identical after repair
        # the repaired entry is valid again: next run is all hits
        healed = run_units(units, config)
        assert healed.counters.cache_hits == len(units)
        assert healed.records == baseline.records

    def test_truncated_entry_is_recomputed(self, warmed):
        units, config, baseline, path = warmed
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        self._assert_recomputed(units, config, baseline)

    def test_garbage_entry_is_recomputed(self, warmed):
        units, config, baseline, path = warmed
        path.write_text("{this is not json")
        self._assert_recomputed(units, config, baseline)

    def test_tampered_payload_fails_checksum(self, warmed):
        units, config, baseline, path = warmed
        entry = json.loads(path.read_text())
        entry["payload"]["speedup"]["csr"] = 999.0  # checksum now stale
        path.write_text(json.dumps(entry))
        self._assert_recomputed(units, config, baseline)

    def test_key_mismatch_is_detected(self, warmed):
        units, config, baseline, path = warmed
        entry = json.loads(path.read_text())
        entry["key"] = "f" * 64  # entry filed under the wrong address
        path.write_text(json.dumps(entry))
        self._assert_recomputed(units, config, baseline)

    def test_wrong_format_version_is_dropped(self, warmed):
        units, config, baseline, path = warmed
        entry = json.loads(path.read_text())
        entry["format"] = 999
        path.write_text(json.dumps(entry))
        self._assert_recomputed(units, config, baseline)
