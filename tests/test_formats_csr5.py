"""Tests for the CSR5 extension format and its SpMV kernels."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSRMatrix
from repro.formats.csr5 import CSR5Matrix
from repro.kernels.csr5_spmv import spmv_csr5_baseline, spmv_csr5_via
from repro.matrices import power_law, random_uniform


def sample(n=200, density=0.05, seed=0):
    return random_uniform(n, density, seed)


class TestCSR5Structure:
    def test_roundtrip_dense(self):
        coo = sample()
        m = CSR5Matrix.from_coo(coo, omega=4, sigma=8)
        np.testing.assert_allclose(m.to_dense(), coo.to_dense())

    def test_roundtrip_various_tile_shapes(self):
        coo = sample(seed=3)
        for omega, sigma in [(2, 4), (4, 4), (8, 16), (3, 5)]:
            m = CSR5Matrix.from_coo(coo, omega=omega, sigma=sigma)
            np.testing.assert_allclose(m.to_dense(), coo.to_dense())

    def test_tiles_and_tail_partition_nnz(self):
        coo = sample(seed=1)
        m = CSR5Matrix.from_coo(coo, omega=4, sigma=8)
        assert m.num_tiles * m.tile_size + m.tail_size == m.nnz
        assert 0 <= m.tail_size < m.tile_size

    def test_tile_is_column_major(self):
        # a single dense row: CSR stream is 0..31; lane l of tile 0 must
        # hold entries l*sigma .. l*sigma+sigma-1
        dense = np.zeros((1, 32))
        dense[0] = np.arange(1, 33)
        m = CSR5Matrix.from_dense(dense, omega=4, sigma=8)
        # column-major: first omega stored values are the lane heads
        np.testing.assert_allclose(m.data[:4], [1, 9, 17, 25])

    def test_bit_flag_marks_row_starts(self):
        dense = np.eye(32)  # every entry starts a row
        m = CSR5Matrix.from_dense(dense, omega=4, sigma=8)
        assert m.bit_flag.all()
        assert m.tile_segments(0) == m.tile_size + 1

    def test_single_long_row_has_one_segment(self):
        dense = np.zeros((2, 64))
        dense[0] = 1.0
        m = CSR5Matrix.from_dense(dense, omega=4, sigma=8)
        assert m.tile_segments(0) == 2  # the row start + carried-in

    def test_rows_spanned(self):
        coo = sample(seed=5)
        m = CSR5Matrix.from_coo(coo)
        for t in range(m.num_tiles):
            first, last = m.rows_spanned(t)
            assert 0 <= first <= last < m.rows

    def test_empty_matrix(self):
        m = CSR5Matrix.from_coo(COOMatrix.empty((5, 5)))
        assert m.num_tiles == 0 and m.tail_size == 0
        np.testing.assert_array_equal(m.to_dense(), np.zeros((5, 5)))

    def test_nnz_preserved(self):
        coo = sample(seed=7)
        assert CSR5Matrix.from_coo(coo).nnz == coo.nnz

    def test_invalid_params(self):
        with pytest.raises(FormatError):
            CSR5Matrix.from_coo(sample(), omega=0)
        with pytest.raises(FormatError):
            CSR5Matrix.from_coo(sample(), sigma=-1)


class TestCSR5Kernels:
    @pytest.fixture(scope="class")
    def problem(self):
        coo = power_law(300, 5.0, 2.0, 17)
        x = np.random.default_rng(2).standard_normal(300)
        ref = CSRMatrix.from_coo(coo).spmv_reference(x)
        return CSR5Matrix.from_coo(coo), x, ref

    def test_baseline_correct(self, problem):
        m, x, ref = problem
        np.testing.assert_allclose(spmv_csr5_baseline(m, x).output, ref, rtol=1e-9)

    def test_via_correct(self, problem):
        m, x, ref = problem
        np.testing.assert_allclose(spmv_csr5_via(m, x).output, ref, rtol=1e-9)

    def test_via_gains_modestly(self, problem):
        # like CSR/SPC5 in Fig. 10: ~1.0-2x, gathers still dominate
        m, x, _ = problem
        speedup = spmv_csr5_baseline(m, x).cycles / spmv_csr5_via(m, x).cycles
        assert 1.0 < speedup < 2.5

    def test_csr5_baseline_beats_plain_csr_baseline(self, problem):
        # CSR5's claim to fame: faster than CSR on the same machine
        from repro.kernels import spmv_csr_baseline

        m, x, _ = problem
        csr = CSRMatrix.from_coo(m.to_coo())
        assert spmv_csr5_baseline(m, x).cycles < spmv_csr_baseline(csr, x).cycles

    def test_x_shape_checked(self, problem):
        m, _x, _ = problem
        with pytest.raises(ShapeError):
            spmv_csr5_baseline(m, np.zeros(m.cols + 1))

    def test_gathers_remain_in_both(self, problem):
        m, x, _ = problem
        assert spmv_csr5_baseline(m, x).counters.gathers > 0
        assert spmv_csr5_via(m, x).counters.gathers > 0
