"""SpMV kernel tests: functional correctness + timing-shape assertions."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import (
    CSBMatrix,
    CSRMatrix,
    SPC5Matrix,
    SellCSigmaMatrix,
)
from repro.kernels import (
    spmv_csb_baseline,
    spmv_csb_via,
    spmv_csr_baseline,
    spmv_csr_via,
    spmv_sellcs_baseline,
    spmv_sellcs_via,
    spmv_spc5_baseline,
    spmv_spc5_via,
)
from repro.matrices import blocked, random_uniform
from repro.via import VIA_4_2P, VIA_16_2P, VIA_16_4P, ViaConfig


@pytest.fixture(scope="module")
def problem():
    coo = blocked(300, 16, 0.05, 0.5, 11)
    x = np.random.default_rng(1).standard_normal(300)
    ref = CSRMatrix.from_coo(coo).spmv_reference(x)
    return coo, x, ref


ALL = [
    ("csr", lambda c: CSRMatrix.from_coo(c), spmv_csr_baseline, spmv_csr_via),
    (
        "csb",
        lambda c: CSBMatrix.from_coo(c, block_size=VIA_16_2P.csb_block_size),
        spmv_csb_baseline,
        spmv_csb_via,
    ),
    ("spc5", lambda c: SPC5Matrix.from_coo(c, vl=4), spmv_spc5_baseline, spmv_spc5_via),
    (
        "sellcs",
        lambda c: SellCSigmaMatrix.from_coo(c, c=4, sigma=32),
        spmv_sellcs_baseline,
        spmv_sellcs_via,
    ),
]


@pytest.mark.parametrize("name,build,base_fn,via_fn", ALL)
class TestSpmvAllFormats:
    def test_baseline_correct(self, problem, name, build, base_fn, via_fn):
        coo, x, ref = problem
        res = base_fn(build(coo), x)
        np.testing.assert_allclose(res.output, ref, rtol=1e-9)

    def test_via_correct(self, problem, name, build, base_fn, via_fn):
        coo, x, ref = problem
        res = via_fn(build(coo), x)
        np.testing.assert_allclose(res.output, ref, rtol=1e-9)

    def test_via_is_faster(self, problem, name, build, base_fn, via_fn):
        coo, x, _ = problem
        mat = build(coo)
        assert base_fn(mat, x).cycles > via_fn(mat, x).cycles

    def test_cycles_positive_and_deterministic(self, problem, name, build, base_fn, via_fn):
        coo, x, _ = problem
        mat = build(coo)
        a, b = base_fn(mat, x), base_fn(mat, x)
        assert a.cycles > 0
        assert a.cycles == b.cycles

    def test_x_shape_checked(self, problem, name, build, base_fn, via_fn):
        coo, _x, _ = problem
        with pytest.raises(ShapeError):
            base_fn(build(coo), np.zeros(coo.cols + 1))


class TestSpmvShapes:
    """Paper-shape assertions (Figure 10 mechanisms)."""

    def test_csb_via_has_no_gathers(self, problem):
        coo, x, _ = problem
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        res = spmv_csb_via(csb, x)
        assert res.counters.gathers == 0
        assert res.counters.sspm_accesses > 0

    def test_csb_baseline_is_gather_bound(self, problem):
        coo, x, _ = problem
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        res = spmv_csb_baseline(csb, x)
        assert res.counters.gathers > 0

    def test_csb_speedup_is_largest(self, problem):
        coo, x, _ = problem
        speedups = {}
        for name, build, base_fn, via_fn in ALL:
            mat = build(coo)
            speedups[name] = base_fn(mat, x).speedup_over(via_fn(mat, x))
            # speedup_over on the via result:
            speedups[name] = base_fn(mat, x).cycles / via_fn(mat, x).cycles
        assert speedups["csb"] == max(speedups.values())
        assert speedups["csb"] > 2.0
        for other in ("csr", "spc5", "sellcs"):
            assert 1.0 < speedups[other] < 2.5

    def test_via_reduces_memory_traffic(self, problem):
        coo, x, _ = problem
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        b = spmv_csb_baseline(csb, x)
        v = spmv_csb_via(csb, x)
        assert v.dram_traffic_bytes <= b.dram_traffic_bytes

    def test_more_ports_not_slower(self, problem):
        coo, x, _ = problem
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        r2 = spmv_csb_via(csb, x, via_config=VIA_16_2P)
        r4 = spmv_csb_via(csb, x, via_config=VIA_16_4P)
        assert r4.cycles <= r2.cycles

    def test_small_sspm_needs_small_blocks(self, problem):
        coo, x, _ = problem
        big_blocks = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        with pytest.raises(ShapeError):
            spmv_csb_via(big_blocks, x, via_config=VIA_4_2P)

    def test_small_config_works_with_matching_blocks(self, problem):
        coo, x, ref = problem
        csb = CSBMatrix.from_coo(coo, block_size=VIA_4_2P.csb_block_size)
        res = spmv_csb_via(csb, x, via_config=VIA_4_2P)
        np.testing.assert_allclose(res.output, ref, rtol=1e-9)


class TestSpmvEdgeCases:
    def test_empty_matrix(self):
        from repro.formats import COOMatrix

        empty = COOMatrix.empty((10, 10))
        x = np.ones(10)
        for name, build, base_fn, via_fn in ALL:
            mat = build(empty)
            np.testing.assert_array_equal(base_fn(mat, x).output, np.zeros(10))
            np.testing.assert_array_equal(via_fn(mat, x).output, np.zeros(10))

    def test_single_entry(self):
        from repro.formats import COOMatrix

        coo = COOMatrix((5, 5), [2], [3], [7.0])
        x = np.arange(5.0)
        for name, build, base_fn, via_fn in ALL:
            mat = build(coo)
            got = via_fn(mat, x).output
            np.testing.assert_allclose(got, [0, 0, 21.0, 0, 0])

    def test_matrix_larger_than_sspm_strips(self):
        # rows exceed one SSPM strip: the CSR VIA flow must tile correctly
        coo = random_uniform(3000, 0.002, 9)
        x = np.random.default_rng(2).standard_normal(3000)
        ref = CSRMatrix.from_coo(coo).spmv_reference(x)
        res = spmv_csr_via(CSRMatrix.from_coo(coo), x, via_config=VIA_4_2P)
        np.testing.assert_allclose(res.output, ref, rtol=1e-9)
