"""Smoke tests for the example scripts.

Each example is compiled and its fast paths executed.  The heavyweight
sweeps (``design_space.py``) are compile-checked only; the quick ones run
end to end with their built-in assertions (every example asserts its VIA
results against a golden reference internally).
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
ALL_SCRIPTS = sorted(p.name for p in EXAMPLES.glob("*.py"))
FAST_SCRIPTS = ["assembler_demo.py"]


def test_expected_examples_exist():
    assert set(ALL_SCRIPTS) >= {
        "quickstart.py",
        "spmv_formats.py",
        "sparse_sparse.py",
        "histogram_stencil.py",
        "design_space.py",
        "pagerank.py",
        "assembler_demo.py",
    }


@pytest.mark.parametrize("script", ALL_SCRIPTS)
def test_example_compiles(script):
    path = EXAMPLES / script
    source = path.read_text()
    compile(source, str(path), "exec")
    assert 'if __name__ == "__main__":' in source
    assert source.lstrip().startswith(("#!/usr/bin/env python", '"""'))


@pytest.mark.parametrize("script", ALL_SCRIPTS)
def test_example_has_module_docstring(script):
    spec = importlib.util.spec_from_file_location("x", EXAMPLES / script)
    module = importlib.util.module_from_spec(spec)
    # docstring extraction without executing the module body
    import ast

    tree = ast.parse((EXAMPLES / script).read_text())
    assert ast.get_docstring(tree), f"{script} lacks a docstring"
    assert module is not None


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_fast_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
