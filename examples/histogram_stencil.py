#!/usr/bin/env python
"""VIA beyond sparse algebra: histograms and stencil computation.

Section IV-F of the paper shows the SSPM generalizes to any kernel with
irregular accumulation (histograms: database query planning, image
processing) or neighbourhood access patterns (stencils: convolution,
PDE solvers).

Run:  python examples/histogram_stencil.py
"""

import numpy as np

from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    reference,
    stencil_vector_baseline,
    stencil_via,
)


def histogram_demo() -> None:
    print("=== Histogram: database column statistics (Algorithm 5) ===")
    rng = np.random.default_rng(21)
    # a skewed column, as real query-planning histograms see
    keys = np.minimum((1024 * rng.random(20_000) ** 2).astype(np.int64), 1023)
    scalar = histogram_scalar_baseline(keys, 1024)
    vector = histogram_vector_baseline(keys, 1024)
    via = histogram_via(keys, 1024)
    assert np.array_equal(via.output, reference.histogram(keys, 1024))
    print(f"scalar baseline: {scalar.cycles:12,.0f} cycles")
    print(f"vector baseline: {vector.cycles:12,.0f} cycles "
          f"({vector.counters.gathers + vector.counters.scatters:,} "
          "gathers/scatters)")
    print(f"VIA:             {via.cycles:12,.0f} cycles "
          f"({via.counters.sspm_accesses:,} scratchpad accesses)")
    print(f"speedup: {scalar.cycles / via.cycles:.2f}x vs scalar "
          f"(paper 5.49x), {vector.cycles / via.cycles:.2f}x vs vector "
          "(paper 4.51x)\n")


def stencil_demo() -> None:
    print("=== Stencil: 4x4 Gaussian blur over an image (Algorithm 6) ===")
    rng = np.random.default_rng(22)
    image = rng.random((128, 128))
    base = stencil_vector_baseline(image)
    via = stencil_via(image)
    golden = reference.gaussian_filter(image, reference.gaussian_kernel_4x4())
    assert np.allclose(via.output, golden)
    print(f"baseline: {base.cycles:12,.0f} cycles "
          f"({base.counters.gathers:,} pattern gathers)")
    print(f"VIA:      {via.cycles:12,.0f} cycles "
          "(pattern reads served by the SSPM)")
    print(f"speedup:  {base.cycles / via.cycles:.2f}x  (paper avg: 3.39x)")


if __name__ == "__main__":
    histogram_demo()
    stencil_demo()
