#!/usr/bin/env python
"""Quickstart: run SpMV on VIA and see where the speedup comes from.

Builds a clustered sparse matrix (the structure CSB exploits), runs the
conventional vectorized CSB kernel and the VIA kernel on the same machine
model, and prints the cycle breakdowns side by side.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CSBMatrix, VIA_16_2P, spmv_csb_baseline, spmv_csb_via
from repro.matrices import blocked


def main() -> None:
    rng = np.random.default_rng(7)

    # a 2,000 x 2,000 matrix with clustered non-zeros (~1% dense)
    coo = blocked(2000, block_dim=32, block_density=0.03, in_block_fill=0.5, seed=7)
    csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
    x = rng.standard_normal(coo.cols)

    print(f"matrix: {coo.rows}x{coo.cols}, nnz={coo.nnz} ({coo.density:.3%})")
    print(f"CSB: {csb.num_blocks} blocks of {csb.block_size}x{csb.block_size}\n")

    base = spmv_csb_baseline(csb, x)
    via = spmv_csb_via(csb, x)

    # the VIA result comes out of the functional scratchpad model — check it
    assert np.allclose(base.output, via.output)

    print(base.summary())
    print(via.summary())
    print()
    print(f"speedup:          {base.cycles / via.cycles:.2f}x  (paper avg: 4.22x)")
    print(f"energy reduction: {base.energy_pj / via.energy_pj:.2f}x  (paper: 3.8x)")
    print()
    print("why: the baseline spends its time in gathers and scalar partial-")
    print("result updates; VIA streams the matrix at full bandwidth while the")
    print("scratchpad serves the indexed accesses:")
    for res in (base, via):
        b = res.breakdown
        print(
            f"  {res.name:24s} gathers={b.gather_serial_cycles:>10,.0f}  "
            f"sspm={b.sspm_cycles:>9,.0f}  dram={b.dram_occupancy_cycles:>9,.0f}  "
            f"bottleneck={b.bottleneck}"
        )


if __name__ == "__main__":
    main()
