#!/usr/bin/env python
"""Compare SpMV across all four compressed formats, with and without VIA.

Reproduces the Figure 10 story on a handful of structurally different
matrices: CSB gains the most from VIA (the scratchpad serves both the
input-vector reads and the partial-result accumulation), while CSR, SPC5
and Sell-C-sigma gain ~1.1-1.5x from output accumulation alone.

Run:  python examples/spmv_formats.py
"""

import numpy as np

from repro import VIA_16_2P
from repro.eval import render_table
from repro.formats import CSBMatrix, CSRMatrix, SPC5Matrix, SellCSigmaMatrix
from repro.kernels import SPMV_VARIANTS
from repro.matrices import banded, blocked, power_law
from repro.sim import DEFAULT_MACHINE

MATRICES = {
    "banded (FEM-like)": lambda: banded(1500, 8, 0.6, 1),
    "blocked (chemistry)": lambda: blocked(1500, 32, 0.03, 0.5, 2),
    "power-law (graph)": lambda: power_law(1500, 6.0, 2.0, 3),
}


def build(coo, fmt):
    if fmt == "csr":
        return CSRMatrix.from_coo(coo)
    if fmt == "csb":
        return CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
    if fmt == "spc5":
        return SPC5Matrix.from_coo(coo, vl=DEFAULT_MACHINE.vl)
    return SellCSigmaMatrix.from_coo(coo, c=DEFAULT_MACHINE.vl, sigma=64)


def main() -> None:
    rng = np.random.default_rng(0)
    rows = []
    for label, make in MATRICES.items():
        coo = make()
        x = rng.standard_normal(coo.cols)
        ref = CSRMatrix.from_coo(coo).spmv_reference(x)
        cells = [label]
        for fmt in ("csr", "csb", "spc5", "sellcs"):
            base_fn, via_fn = SPMV_VARIANTS[fmt]
            mat = build(coo, fmt)
            base = base_fn(mat, x)
            via = via_fn(mat, x)
            assert np.allclose(via.output, ref), (label, fmt)
            cells.append(f"{base.cycles / via.cycles:.2f}x")
        rows.append(cells)
    print(
        render_table(
            "VIA speedup over each format's software SpMV",
            ["matrix", "csr", "csb", "spc5", "sellcs"],
            rows,
        )
    )
    print("\npaper averages: csr 1.25x, csb 4.22x, spc5 1.24x, sellcs 1.31x")


if __name__ == "__main__":
    main()
