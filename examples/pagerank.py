#!/usr/bin/env python
"""PageRank on VIA — the paper's graph-computing outlook, made concrete.

The conclusions section argues VIA applies to graph computing; SpMV *is*
the inner loop of PageRank (and the most important kernel in GraphBLAS,
per the introduction).  This example builds a scale-free web-like graph,
runs power iterations with the baseline and the VIA CSB SpMV kernels, and
reports total simulated cycles for the whole solve.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import CSBMatrix, CSRMatrix, VIA_16_2P
from repro.kernels import spmv_csb_baseline, spmv_csb_via
from repro.matrices import power_law

DAMPING = 0.85
ITERATIONS = 10
NODES = 1500


def build_transition_matrix():
    """Column-stochastic transition matrix of a scale-free digraph."""
    graph = power_law(NODES, avg_nnz_per_row=6.0, alpha=2.0, seed=99)
    # normalize columns (out-link probability); dangling columns get
    # uniform teleport handled in the iteration
    dense = (graph.to_dense() != 0).astype(float).T  # edge j->i as M[i, j]
    out_degree = dense.sum(axis=0)
    nonzero = out_degree > 0
    dense[:, nonzero] /= out_degree[nonzero]
    from repro.formats import COOMatrix

    return COOMatrix.from_dense(dense), ~nonzero


def main() -> None:
    coo, dangling = build_transition_matrix()
    csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
    csr = CSRMatrix.from_coo(coo)
    rank = np.full(NODES, 1.0 / NODES)

    total_base = total_via = 0.0
    for it in range(ITERATIONS):
        base = spmv_csb_baseline(csb, rank)
        via = spmv_csb_via(csb, rank)
        assert np.allclose(base.output, via.output)
        total_base += base.cycles
        total_via += via.cycles

        # the rank update itself (dense vector ops are format-independent)
        spread = base.output
        teleport = (1 - DAMPING) / NODES + DAMPING * rank[dangling].sum() / NODES
        rank = DAMPING * spread + teleport

    rank /= rank.sum()
    golden = _golden_pagerank(csr)
    top = np.argsort(-rank)[:5]
    print(f"PageRank on a {NODES}-node scale-free graph "
          f"({coo.nnz} edges), {ITERATIONS} power iterations\n")
    print("top-5 nodes:", ", ".join(f"{int(i)} ({rank[i]:.4f})" for i in top))
    print(f"agrees with numpy power iteration: "
          f"{np.allclose(rank, golden, atol=1e-6)}\n")
    print(f"baseline SpMV cycles: {total_base:14,.0f}")
    print(f"VIA SpMV cycles:      {total_via:14,.0f}")
    print(f"end-to-end speedup:   {total_base / total_via:.2f}x")


def _golden_pagerank(csr: CSRMatrix) -> np.ndarray:
    dense = csr.to_dense()
    rank = np.full(NODES, 1.0 / NODES)
    dangling = dense.sum(axis=0) == 0
    for _ in range(ITERATIONS):
        teleport = (1 - DAMPING) / NODES + DAMPING * rank[dangling].sum() / NODES
        rank = DAMPING * (dense @ rank) + teleport
    return rank / rank.sum()


if __name__ == "__main__":
    main()
