#!/usr/bin/env python
"""Sparse-sparse workloads: SpMA and SpMM with CAM-mode index matching.

The paper's intro motivates SpMM with AI workloads (sparse gradient
updates) and SpMA with iterative solvers that combine sparse operators.
This example mimics both:

* accumulate two sparse gradient matrices (SpMA);
* chain two sparse operators, computing their product (SpMM).

Both baselines burn their cycles in software index matching — compares and
unpredictable branches for SpMA, per-element index searches against every
column for SpMM.  VIA's index table resolves the matching in hardware.

Run:  python examples/sparse_sparse.py
"""

import numpy as np

from repro.formats import CSCMatrix, CSRMatrix
from repro.kernels import (
    reference,
    spma_csr_baseline,
    spma_via,
    spmm_csr_baseline,
    spmm_via,
)
from repro.matrices import power_law, random_uniform


def spma_demo() -> None:
    print("=== SpMA: accumulate two sparse gradient matrices ===")
    a = CSRMatrix.from_coo(random_uniform(800, 0.01, 11))
    b = CSRMatrix.from_coo(random_uniform(800, 0.01, 12))
    base = spma_csr_baseline(a, b)
    via = spma_via(a, b)
    golden = CSRMatrix.from_coo(reference.spma(a, b))
    assert via.output.allclose(golden)
    print(f"operands: {a.nnz} + {b.nnz} nnz -> {golden.nnz} nnz")
    print(f"baseline: {base.cycles:12,.0f} cycles "
          f"({base.counters.branch_mispredicts:,.0f} mispredicted branches)")
    print(f"VIA:      {via.cycles:12,.0f} cycles "
          f"({via.counters.cam_searches:,} CAM searches, 0 branches)")
    print(f"speedup:  {base.cycles / via.cycles:.2f}x  (paper avg: 6.14x)\n")


def spmm_demo() -> None:
    print("=== SpMM: chain two sparse operators (A @ B) ===")
    a = CSRMatrix.from_coo(power_law(500, 5.0, 2.0, 13))
    b = CSCMatrix.from_coo(power_law(500, 5.0, 2.0, 14))
    base = spmm_csr_baseline(a, b)
    via = spmm_via(a, b)
    golden = CSRMatrix.from_coo(reference.spmm(a, b))
    assert via.output.allclose(golden)
    print(f"operands: {a.nnz} x {b.nnz} nnz -> {golden.nnz} nnz")
    print(f"baseline: {base.cycles:12,.0f} cycles (bottleneck: "
          f"{base.breakdown.bottleneck})")
    print(f"VIA:      {via.cycles:12,.0f} cycles (bottleneck: "
          f"{via.breakdown.bottleneck})")
    print(f"speedup:  {base.cycles / via.cycles:.2f}x  (paper avg: 6.00x)")


if __name__ == "__main__":
    spma_demo()
    spmm_demo()
