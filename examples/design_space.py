#!/usr/bin/env python
"""Size the VIA hardware: performance vs area/leakage (Fig. 9 + Table II).

Sweeps the four DSE configurations over a small matrix set, pairs the
performance with the synthesized area/leakage model, and prints the
efficiency trade-off the paper uses to select 16_2p.

The sweep routes through the parallel cached runner, so a re-run is
near-free: results land in ``examples/.sweep-cache`` keyed by matrix spec,
kernel and hardware configs.  ``REPRO_SWEEP_WORKERS=4`` fans the sweep out
over a process pool; ``REPRO_SWEEP_NO_CACHE=1`` forces recomputation.

Run:  python examples/design_space.py   (takes a minute or two cold)
"""

import pathlib

from repro.eval import RunnerConfig, render_dse, render_table, run_dse
from repro.matrices import MatrixCollection
from repro.via import ViaConfig, area_mm2, dse_configs, leakage_mw, table2


def main() -> None:
    coll = MatrixCollection(6, seed=33, min_n=1024, max_n=3072)
    spmm_coll = MatrixCollection(4, seed=34, min_n=256, max_n=640)
    runner = RunnerConfig.from_env(
        cache_dir=str(pathlib.Path(__file__).parent / ".sweep-cache"),
    )
    result = run_dse(coll, spmm_collection=spmm_coll, runner=runner)

    print(render_dse(result))
    print()
    print(table2(dse_configs()))
    print()

    # performance-per-area: geomean of the three kernels' normalized
    # speedups divided by the configuration's area
    rows = []
    for cfg_name in sorted(
        result.cycles["spmv"], key=lambda n: int(n.split("_")[0])
    ):
        kb, ports = cfg_name.split("_")
        cfg = ViaConfig(int(kb), int(ports[:-1]))
        perf = 1.0
        for kernel in ("spmv", "spma", "spmm"):
            perf *= result.normalized_speedup(kernel)[cfg_name]
        perf **= 1 / 3
        rows.append(
            [
                cfg_name,
                f"{perf:.3f}x",
                f"{area_mm2(cfg):.3f}",
                f"{leakage_mw(cfg):.2f}",
                f"{perf / area_mm2(cfg):.2f}",
            ]
        )
    print(
        render_table(
            "Efficiency trade-off (the paper selects 16_2p)",
            ["config", "perf", "area mm^2", "leak mW", "perf/area"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
