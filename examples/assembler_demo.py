#!/usr/bin/env python
"""Program VIA at the ISA level: assemble, encode, disassemble, execute.

Section IV-C introduces the instructions as extensions "easily integrated
in the programming model of different Vector ISAs".  This example writes a
small sparse-accumulation routine in VIA assembly, round-trips it through
the 64-bit machine encoding, and executes it on the functional device.

Run:  python examples/assembler_demo.py
"""

import numpy as np

from repro.via import (
    Program,
    RegisterFile,
    ViaConfig,
    ViaDevice,
    disassemble_word,
    execute_program,
)

SOURCE = """
# Merge two sparse rows held in registers (a tiny SpMA inner loop):
#   v1/v2 = values/indices of row A
#   v3/v4 = values/indices of row B
vidxclear
vidxload.c v1, v2          # insert row A under its column indices
vidxadd.c  v3, v4, sspm    # row B: matching columns accumulate,
                           # new columns insert in order
vidxcount  v6              # how many result entries?
vidxmov    v7, count=4     # drain the merged row
"""


def main() -> None:
    program = Program.parse(SOURCE)

    print("assembly:")
    for instr, word in zip(program.instructions, program.to_words()):
        print(f"  {word:#018x}  {instr.render()}")

    # binary round-trip: decode the machine words back to assembly
    recovered = Program.from_words(program.to_words())
    assert recovered.instructions == program.instructions
    print("\ndisassembly of the first word:")
    print(" ", disassemble_word(program.to_words()[0]))

    # execute on the functional device
    device = ViaDevice(ViaConfig(4, 2))
    regs = RegisterFile(device.vl)
    regs.write(1, [1.0, 2.0, 3.0, 4.0])   # row A values
    regs.write(2, [10, 20, 30, 40])       # row A columns
    regs.write(3, [5.0, 6.0, 7.0, 8.0])   # row B values
    regs.write(4, [20, 40, 50, 60])       # row B columns
    out = execute_program(program, device, regs)

    print("\nexecution:")
    print(f"  result entries (vidxcount -> v6): {out.scalar(6):.0f}")
    idx, vals = device.drain()
    merged = dict(zip(idx.tolist(), vals.tolist()))
    print(f"  merged row: {merged}")
    assert merged == {10: 1.0, 20: 7.0, 30: 3.0, 40: 10.0, 50: 7.0, 60: 8.0}
    print("  matches the software merge: True")


if __name__ == "__main__":
    main()
