"""T1 — Table I: simulated machine and VIA hardware parameters.

Regenerates the configuration table the paper prints (machine rows plus
the VIA configuration rows of the design space).
"""

from conftest import save_artifact

from repro.eval import render_table
from repro.sim import table1
from repro.via import all_configs


def render_via_rows() -> str:
    rows = [
        (
            cfg.name,
            f"{cfg.sram_kb} KB",
            f"{cfg.cam_kb} KB",
            cfg.ports,
            cfg.sram_entries,
            cfg.cam_entries,
            cfg.csb_block_size,
        )
        for cfg in all_configs()
    ]
    return render_table(
        "Table I (VIA rows) — SSPM configurations",
        ["config", "SRAM", "CAM", "ports", "entries", "cam entries", "CSB beta"],
        rows,
    )


def test_table1_artifact(benchmark, results_dir):
    def build():
        return table1() + "\n\n" + render_via_rows()

    text = benchmark(build)
    save_artifact(results_dir, "table1_config", text)
    assert "Table I" in text
    assert "16_2p" in text
    assert "DRAM" in text
