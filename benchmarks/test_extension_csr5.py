"""Extension — CSR5 comparison (paper related work, Section VIII).

The paper positions VIA against CSR5 qualitatively: software formats can
restructure the matrix side but leave the gather problem (Challenge 1) in
place.  This bench measures that: CSR5's segmented-sum SpMV beats plain
CSR on the same machine, yet VIA-CSB still beats CSR5 by a wide margin,
and VIA layered on CSR5 itself yields only the modest output-accumulator
gain of the other software formats.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.eval import geomean, render_table
from repro.formats import CSBMatrix, CSR5Matrix, CSRMatrix
from repro.kernels import (
    spmv_csb_via,
    spmv_csr5_baseline,
    spmv_csr5_via,
    spmv_csr_baseline,
)
from repro.matrices import banded, power_law, random_uniform
from repro.via import VIA_16_2P

pytestmark = pytest.mark.figure

MATRICES = {
    "banded": lambda: banded(1200, 8, 0.6, 61),
    "powerlaw": lambda: power_law(1200, 6.0, 2.0, 62),
    "random": lambda: random_uniform(1200, 0.008, 63),
}


@pytest.fixture(scope="module")
def csr5_results():
    rng = np.random.default_rng(9)
    out = {}
    for name, make in MATRICES.items():
        coo = make()
        x = rng.standard_normal(coo.cols)
        csr = CSRMatrix.from_coo(coo)
        m5 = CSR5Matrix.from_coo(coo)
        csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
        out[name] = {
            "csr": spmv_csr_baseline(csr, x).cycles,
            "csr5": spmv_csr5_baseline(m5, x).cycles,
            "csr5_via": spmv_csr5_via(m5, x).cycles,
            "csb_via": spmv_csb_via(csb, x).cycles,
        }
    return out


def test_csr5_artifact(csr5_results, benchmark, results_dir):
    def render():
        rows = []
        for name, c in csr5_results.items():
            rows.append(
                [
                    name,
                    f"{c['csr'] / c['csr5']:.2f}x",
                    f"{c['csr5'] / c['csr5_via']:.2f}x",
                    f"{c['csr5'] / c['csb_via']:.2f}x",
                ]
            )
        rows.append(
            [
                "geomean",
                f"{geomean(c['csr'] / c['csr5'] for c in csr5_results.values()):.2f}x",
                f"{geomean(c['csr5'] / c['csr5_via'] for c in csr5_results.values()):.2f}x",
                f"{geomean(c['csr5'] / c['csb_via'] for c in csr5_results.values()):.2f}x",
            ]
        )
        return render_table(
            "Extension — CSR5 (software) vs VIA",
            ["matrix", "CSR5 over CSR", "VIA on CSR5", "VIA-CSB over CSR5"],
            rows,
        )

    text = benchmark(render)
    save_artifact(results_dir, "extension_csr5", text)

    for name, c in csr5_results.items():
        assert c["csr5"] < c["csr"], f"CSR5 should beat CSR on {name}"
        assert c["csr5_via"] < c["csr5"], name
        assert c["csb_via"] < c["csr5"], name
    # the headline: hardware still beats the best software format broadly
    ratio = geomean(c["csr5"] / c["csb_via"] for c in csr5_results.values())
    assert ratio > 2.0
