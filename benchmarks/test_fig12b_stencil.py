"""F12b — Figure 12b: 4x4 Gaussian filter speedups (use case 2).

Paper reference: VIA outperforms the vectorized baseline by 3.39x on
average over 128x128, 256x256 and 512x512 images.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.eval import geomean, render_table
from repro.kernels import reference, stencil_vector_baseline, stencil_via

pytestmark = pytest.mark.figure

SIZES = (128, 256, 512)


@pytest.fixture(scope="module")
def stencil_results():
    rng = np.random.default_rng(3)
    out = {}
    for size in SIZES:
        image = rng.standard_normal((size, size))
        base = stencil_vector_baseline(image)
        via = stencil_via(image, functional=False)
        out[size] = (base, via)
    return out


def test_fig12b_artifact(stencil_results, benchmark, results_dir):
    def render():
        rows = [
            [
                f"{size}px",
                f"{b.cycles:,.0f}",
                f"{v.cycles:,.0f}",
                f"{b.cycles / v.cycles:.2f}x",
            ]
            for size, (b, v) in stencil_results.items()
        ]
        avg = geomean(b.cycles / v.cycles for b, v in stencil_results.values())
        rows.append(["geomean", "", "", f"{avg:.2f}x"])
        return render_table(
            "Figure 12b — 4x4 Gaussian filter speedup (paper avg: 3.39x)",
            ["image", "baseline cycles", "VIA cycles", "speedup"],
            rows,
        )

    text = benchmark(render)
    save_artifact(results_dir, "fig12b_stencil", text)

    avg = geomean(b.cycles / v.cycles for b, v in stencil_results.values())
    assert 2.0 < avg < 6.0  # paper: 3.39x
    for size, (b, v) in stencil_results.items():
        assert b.cycles > v.cycles, f"{size}px"


def test_fig12b_functional_matches_golden(benchmark):
    rng = np.random.default_rng(4)
    image = rng.standard_normal((24, 24))

    def run():
        return stencil_via(image, functional=True)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    want = reference.gaussian_filter(image, reference.gaussian_kernel_4x4())
    np.testing.assert_allclose(res.output, want, rtol=1e-9)


def test_fig12b_pair_benchmark(benchmark):
    image = np.random.default_rng(5).standard_normal((128, 128))

    def pair():
        return stencil_vector_baseline(image), stencil_via(image, functional=False)

    base, via = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert base.cycles > via.cycles
