"""F12a — Figure 12a: histogram speedups (Section VII-D, use case 1).

Paper reference: VIA-histogram outperforms the Intel scalar baseline by
5.49x and the AVX512CD-style vector baseline by 4.51x.  We evaluate three
key distributions (uniform, gaussian, zipf-like), as the paper evaluates
multiple inputs, and report geometric-mean speedups.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.eval import geomean, render_table
from repro.kernels import (
    histogram_scalar_baseline,
    histogram_vector_baseline,
    histogram_via,
    reference,
)

pytestmark = pytest.mark.figure

NUM_BINS = 1024
NUM_KEYS = 32_768


def key_streams():
    rng = np.random.default_rng(42)
    uniform = rng.integers(0, NUM_BINS, size=NUM_KEYS)
    gaussian = np.clip(
        (rng.normal(NUM_BINS / 2, NUM_BINS / 8, NUM_KEYS)).astype(np.int64),
        0,
        NUM_BINS - 1,
    )
    zipf = np.minimum(
        (NUM_BINS * rng.random(NUM_KEYS) ** 3).astype(np.int64), NUM_BINS - 1
    )
    return {"uniform": uniform, "gaussian": gaussian, "zipf": zipf}


@pytest.fixture(scope="module")
def histogram_results():
    out = {}
    for name, keys in key_streams().items():
        scalar = histogram_scalar_baseline(keys, NUM_BINS)
        vector = histogram_vector_baseline(keys, NUM_BINS)
        via = histogram_via(keys, NUM_BINS, functional=False)
        out[name] = (scalar, vector, via)
    return out


def test_fig12a_artifact(histogram_results, benchmark, results_dir):
    def render():
        rows = []
        for name, (s, v, via) in histogram_results.items():
            rows.append(
                [
                    name,
                    f"{s.cycles / via.cycles:.2f}x",
                    f"{v.cycles / via.cycles:.2f}x",
                ]
            )
        s_avg = geomean(
            s.cycles / via.cycles for s, v, via in histogram_results.values()
        )
        v_avg = geomean(
            v.cycles / via.cycles for s, v, via in histogram_results.values()
        )
        rows.append(["geomean", f"{s_avg:.2f}x", f"{v_avg:.2f}x"])
        return render_table(
            "Figure 12a — histogram speedup of VIA "
            "(paper: 5.49x scalar, 4.51x vector)",
            ["keys", "vs scalar", "vs vector"],
            rows,
        )

    text = benchmark(render)
    save_artifact(results_dir, "fig12a_histogram", text)

    s_avg = geomean(s.cycles / via.cycles for s, v, via in histogram_results.values())
    v_avg = geomean(v.cycles / via.cycles for s, v, via in histogram_results.values())
    assert 3.0 < s_avg < 9.0  # paper: 5.49x
    assert 3.0 < v_avg < 8.0  # paper: 4.51x
    # the paper's ordering: the scalar baseline is the worst of the three
    for name, (s, v, via) in histogram_results.items():
        assert s.cycles >= v.cycles * 0.9, name
        assert via.cycles < v.cycles, name
    # outputs stay correct
    for name, keys in key_streams().items():
        _s, _v, via = histogram_results[name]
        np.testing.assert_array_equal(
            via.output, reference.histogram(keys, NUM_BINS)
        )


def test_fig12a_trio_benchmark(benchmark):
    keys = key_streams()["uniform"][:8192]

    def trio():
        return (
            histogram_scalar_baseline(keys, NUM_BINS).cycles,
            histogram_vector_baseline(keys, NUM_BINS).cycles,
            histogram_via(keys, NUM_BINS, functional=False).cycles,
        )

    s, v, via = benchmark.pedantic(trio, rounds=1, iterations=1)
    assert via < v < s * 1.1
