"""Cost-model benchmark: training, prediction, and guided-DSE speedup.

Measures the learned cost model (:mod:`repro.model`) end to end on the
real Fig. 9 workload shape:

1. **exhaustive DSE** — the four SSPM configurations swept over the
   three kernels with a journal attached; this is both the wall-clock
   baseline and the training corpus (the model trains on the sweep's
   *own* journal — no separate data-generation step exists or is
   needed).
2. **training** — mine the journal, fit the boosted ensemble, report
   train time, holdout MAPE, and the per-kernel error breakdown.
3. **prediction throughput** — vectorized ensemble descent over the
   design matrix, rows/second (this bounds estimate-job latency and
   admission-cost overhead in the serving layer).
4. **guided DSE** — ``run_dse(strategy="guided")`` with the trained
   model: rank all configurations by predicted cycles, simulate only the
   surviving half.  Timed fresh (no result cache) so wall clock is
   proportional to configurations simulated.

Run::

    PYTHONPATH=src python benchmarks/bench_model.py --check

``--check`` exits non-zero unless holdout MAPE clears the accuracy gate,
guided DSE finds the same per-kernel ``best_config`` as exhaustive while
simulating at most half the configurations, and the guided wall-clock
speedup clears 1.5x.  ``--smoke`` shrinks the collection for CI.  The
full-size run is checked in as ``benchmarks/results/BENCH_model.json``
and summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.eval.dse import DSE_KERNELS, run_dse  # noqa: E402
from repro.eval.runner import RunnerConfig  # noqa: E402
from repro.matrices.collection import small_collection  # noqa: E402
from repro.model import CostModel, ModelStore, mine  # noqa: E402

DEFAULT_JSON = REPO / "benchmarks" / "results" / "BENCH_model.json"

MAPE_GATE = 0.30
SPEEDUP_GATE = 1.5
FRACTION_GATE = 0.5


def bench_predict(model, X, repeats):
    """Prediction throughput over a tiled design matrix."""
    tiled = np.tile(X, (max(1, 4096 // max(1, len(X))), 1))
    model.predict(tiled)  # warm
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        model.predict(tiled)
        best = min(best, time.perf_counter() - t0)
    return {
        "rows": int(tiled.shape[0]),
        "best_s": round(best, 6),
        "rows_per_s": round(tiled.shape[0] / best),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--matrices", type=int, default=8,
                        help="collection size (default 8)")
    parser.add_argument("--max-n", type=int, default=384,
                        help="matrix size cap (default 384)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions for DSE phases (default 3)")
    parser.add_argument("--n-estimators", type=int, default=150)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload (4 matrices, max_n 160)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless holdout MAPE <= "
                             f"{MAPE_GATE}, guided best_config matches "
                             "exhaustive with <= 50% of configs simulated, "
                             f"and guided speedup >= {SPEEDUP_GATE}x")
    parser.add_argument("--json", metavar="PATH",
                        help=f"summary JSON path (default {DEFAULT_JSON})")
    args = parser.parse_args(argv)
    if args.smoke:
        args.matrices, args.max_n = 4, 160
        args.n_estimators = min(args.n_estimators, 60)

    collection = small_collection(args.matrices, seed=9, max_n=args.max_n)

    # phase 1: exhaustive DSE, journaled — baseline timing + training data
    print(f"exhaustive DSE ({args.matrices} matrices, "
          f"max_n={args.max_n}, 4 configs x 3 kernels) ...")
    with tempfile.TemporaryDirectory(prefix="bench-model-") as td:
        journal = str(Path(td) / "dse.jsonl")
        best_ex = float("inf")
        exhaustive = None
        for i in range(args.repeats):
            cfg = RunnerConfig(
                workers=1,
                journal_path=journal if i == 0 else None,
            )
            t0 = time.perf_counter()
            exhaustive = run_dse(
                collection, runner=cfg, spmm_max_n=args.max_n
            )
            best_ex = min(best_ex, time.perf_counter() - t0)
        print(f"  best {best_ex*1e3:8.1f}ms  "
              f"best_config: "
              f"{ {k: exhaustive.best_config(k) for k in DSE_KERNELS} }")

        # phase 2: mine + train
        dataset = mine(journals=[journal])
    t0 = time.perf_counter()
    model = CostModel.train(dataset, n_estimators=args.n_estimators)
    train_s = time.perf_counter() - t0
    holdout_mape = float(model.metrics["mape"])
    per_kernel = {
        k: round(float(v["mape"]), 4)
        for k, v in model.metrics["per_kernel"].items()
    }
    print(f"\ntraining: {len(dataset)} rows, "
          f"{model.ensemble.n_estimators} trees, {train_s*1e3:.0f}ms")
    print(f"  holdout mape: {holdout_mape:.4f}  per-kernel: {per_kernel}")
    with tempfile.TemporaryDirectory(prefix="bench-model-store-") as sd:
        key = ModelStore(sd).put(model.to_payload())
    print(f"  artifact key: {key[:16]}…")

    # phase 3: prediction throughput
    predict = bench_predict(model, dataset.X, repeats=max(3, args.repeats))
    print(f"\npredict: {predict['rows']} rows in "
          f"{predict['best_s']*1e3:.2f}ms "
          f"({predict['rows_per_s']/1e3:.0f} krows/s)")

    # phase 4: guided DSE with the trained model, fresh (no cache)
    print("\nguided DSE (model-ranked, half the configs simulated) ...")
    best_g = float("inf")
    guided = None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        guided = run_dse(
            collection,
            strategy="guided",
            model=model,
            spmm_max_n=args.max_n,
        )
        best_g = min(best_g, time.perf_counter() - t0)
    fraction = guided.simulated_fraction()
    speedup = best_ex / best_g
    best_match = all(
        guided.best_config(k) == exhaustive.best_config(k)
        for k in DSE_KERNELS
    )
    cycles_identical = all(
        guided.cycles[k][name] == exhaustive.cycles[k][name]
        for k in DSE_KERNELS
        for name in guided.cycles[k]
    )
    print(f"  best {best_g*1e3:8.1f}ms  speedup {speedup:.2f}x  "
          f"simulated {fraction:.0%} of configs")
    print(f"  best_config matches exhaustive: {best_match}  "
          f"survivor cycles bit-identical: {cycles_identical}")

    summary = {
        "workload": {
            "matrices": args.matrices,
            "max_n": args.max_n,
            "repeats": args.repeats,
            "dataset_rows": len(dataset),
            "n_estimators": args.n_estimators,
        },
        "train": {
            "train_s": round(train_s, 6),
            "holdout_mape": round(holdout_mape, 4),
            "per_kernel_mape": per_kernel,
            "artifact_key": key,
        },
        "predict": predict,
        "dse": {
            "exhaustive_s": round(best_ex, 6),
            "guided_s": round(best_g, 6),
            "speedup": round(speedup, 2),
            "simulated_fraction": round(fraction, 3),
            "best_config_match": best_match,
            "survivor_cycles_identical": cycles_identical,
            "best_config": {
                k: exhaustive.best_config(k) for k in DSE_KERNELS
            },
            "simulated": {k: list(v) for k, v in guided.simulated.items()},
        },
    }
    out = Path(args.json) if args.json else DEFAULT_JSON
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nwrote {out}")

    if args.check:
        failures = []
        if not (holdout_mape <= MAPE_GATE):
            failures.append(
                f"holdout MAPE {holdout_mape:.4f} above the "
                f"{MAPE_GATE} gate"
            )
        if not best_match:
            failures.append(
                "guided DSE disagreed with exhaustive on best_config"
            )
        if not cycles_identical:
            failures.append("guided survivor cycles diverged from exhaustive")
        if fraction > FRACTION_GATE:
            failures.append(
                f"guided simulated {fraction:.0%} of configs "
                f"(> {FRACTION_GATE:.0%})"
            )
        if speedup < SPEEDUP_GATE:
            failures.append(
                f"guided speedup {speedup:.2f}x below the "
                f"{SPEEDUP_GATE}x gate"
            )
        if failures:
            print("\nCHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(f"\nCHECK PASSED: mape <= {MAPE_GATE}, best_config match, "
              f"<= 50% simulated, speedup >= {SPEEDUP_GATE}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
