"""Replay-speedup benchmark for the columnar pricing engine.

Measures the headline claim of the columnar tentpole: re-pricing the
Fig. 9 DSE's recorded op streams through :mod:`repro.sim.columnar` is an
order of magnitude faster than the scalar ``Op.apply`` walk, while
staying bit-identical (the differential and property suites pin the
identity; this script pins the speed and re-checks identity on the way).

The workload is the real Fig. 9 shape: record the DSE collection once
into an artifact store, then replay every recording under every port
variant of its capacity group — exactly the work the record/replay sweep
and the serving layer's replay path perform.  Two phases per engine:

* **warm** — recordings already resident (the steady state behind the
  store's load memo): pure re-pricing arithmetic.  The scalar engine
  walks every op in Python; the columnar engine reduces whole columns.
  This is the headline number.
* **cold** — each iteration reloads every artifact from disk first, so
  the scalar engine also pays per-op materialization of the columnar
  columns while the columnar engine prices them directly.  Dominated by
  shared npz decompression, reported for honesty.

Run::

    PYTHONPATH=src python benchmarks/bench_columnar.py --check

``--check`` exits non-zero unless the warm speedup clears 5x and the two
engines priced every replay bit-identically; ``--smoke`` shrinks the
collection for CI.  The full-size run is checked in as
``benchmarks/results/BENCH_columnar.json`` and summarized in
EXPERIMENTS.md.

``--cold`` switches to the batched-narration benchmark for the *record*
path (fresh simulations, nothing cached).  Two measurements:

* **cold end-to-end** — the full Fig. 9 DSE in record+replay mode
  (functional kernel execution, narration, pricing, artifact IO,
  replays), once under ``scalar`` narration and once under ``batched``
  narration, with the DSE cycle tables compared for bit-identity.
  Amdahl applies here: functional simulation (the VIA engine's CAM/SSPM
  bookkeeping), the order-dependent cache walk, and npz IO are identical
  in both modes and dominate wall-clock, so this number hovers near 1x —
  it is reported and gated as a *no-regression* bound, not a speedup
  claim.
* **record-path narration** — the layer batching actually replaces:
  narrating a Fig. 9-shaped op stream (VIA-op dominated, mixed with
  vector/scalar compute, branches, and stalls) through a live
  ``RecorderBackend`` and pricing it to a finalized result.  Scalar mode
  pays one ``Op`` dataclass + ``Op.apply`` per event; batched mode
  appends to the ``ColumnarBuilder`` and prices whole flushes.  This is
  the gated >=3x number, and the finalized cycle totals must match
  bit-for-bit.

With ``--cold``, results land in ``BENCH_columnar_cold.json`` and
``--check`` gates narration speedup >= 3x, bit-identity of both
measurements, and no cold end-to-end regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.eval.dse import run_dse  # noqa: E402
from repro.matrices.collection import small_collection  # noqa: E402
from repro.sim.backends import replay_recording  # noqa: E402
from repro.sim.ops import load_recordings  # noqa: E402
from repro.via.config import dse_configs  # noqa: E402

DEFAULT_JSON = REPO / "benchmarks" / "results" / "BENCH_columnar.json"
DEFAULT_COLD_JSON = REPO / "benchmarks" / "results" / "BENCH_columnar_cold.json"


def _load_all(paths):
    recs = []
    for path in paths:
        loaded, _ = load_recordings(path)
        recs.extend(loaded.values())
    return recs


def _replay_all(recordings, engine, port_variants):
    """Replay every recording under every port variant of its group."""
    results = []
    for rec in recordings:
        if rec.via_config is not None:
            cfgs = port_variants[rec.via_config.sram_kb]
        else:
            cfgs = [None]  # baseline recordings have no VIA side
        for cfg in cfgs:
            results.append(
                replay_recording(rec, via_config=cfg, engine=engine)
            )
    return results


def _fingerprint(results):
    """Bitwise digest of every replay's cycles/energy, for identity."""
    bits = b"".join(
        np.float64(r.cycles).tobytes() + np.float64(r.energy_pj).tobytes()
        for r in results
    )
    return bits


def bench_engine(engine, paths, port_variants, repeats):
    # warm: load once, replay once to populate lazy state, then time
    recordings = _load_all(paths)
    results = _replay_all(recordings, engine, port_variants)
    t0 = time.perf_counter()
    for _ in range(repeats):
        results = _replay_all(recordings, engine, port_variants)
    warm_s = (time.perf_counter() - t0) / repeats
    # cold: a fresh load every iteration (fresh Recording objects, so the
    # scalar engine re-materializes per-op dataclasses each time)
    t0 = time.perf_counter()
    for _ in range(max(1, repeats // 2)):
        cold_results = _replay_all(_load_all(paths), engine, port_variants)
    cold_s = (time.perf_counter() - t0) / max(1, repeats // 2)
    assert _fingerprint(cold_results) == _fingerprint(results)
    return {
        "warm_s": round(warm_s, 6),
        "cold_s": round(cold_s, 6),
        "replays": len(results),
    }, _fingerprint(results)


def _narrate_fig9_mix(core, n_ops):
    """A Fig. 9-shaped narration stream, replayed deterministically.

    The recorded DSE stream is ~89% VIA ops (one ``record_via_op`` per
    executed VIA instruction) around vector/scalar compute, branches, and
    dependency stalls; this mix keeps the VIA share at a conservative 50%
    so the measured speedup under-states, never games, the real workload.
    Memory ops are deliberately absent: their cost is the order-dependent
    cache walk, which both narration modes share verbatim.
    """
    for _ in range(n_ops // 10):
        core.record_via_op(sspm_elements=16, cam_searches=16, port_passes=2)
        core.record_via_op(sspm_elements=8, cam_searches=8, port_passes=1)
        core.record_via_op(sspm_elements=16, cam_searches=0, port_passes=2)
        core.record_via_op(sspm_elements=4, cam_searches=4, port_passes=1)
        core.vector_op("alu", 16)
        core.vector_op("fma", 8)
        core.scalar_ops(4)
        core.branches(8, 0.05)
        core.record_via_op(sspm_elements=16, cam_searches=16, port_passes=2)
        core.dependency_stall(3.0)


def bench_narration(mode, n_ops, repeats):
    """Record-path narration+pricing throughput under one narration mode."""
    from repro.sim.backends import RecorderBackend
    from repro.sim.config import DEFAULT_MACHINE
    from repro.sim.core import Core, set_narration_mode
    from repro.via.config import DEFAULT_VIA
    from repro.via.engine import ViaDevice

    prev = set_narration_mode(mode)
    try:
        best = float("inf")
        result = None
        for _ in range(repeats):
            core = Core(
                DEFAULT_MACHINE,
                via=ViaDevice(DEFAULT_VIA),
                backend=RecorderBackend(),
            )
            t0 = time.perf_counter()
            _narrate_fig9_mix(core, n_ops)
            result = core.finalize("bench-narration")
            best = min(best, time.perf_counter() - t0)
    finally:
        set_narration_mode(prev)
    digest = (
        np.float64(result.cycles).tobytes()
        + np.float64(result.energy_pj).tobytes()
    )
    return {"best_s": round(best, 6), "ops_per_s": round(n_ops / best)}, digest


def bench_cold_dse(mode, collection, repeats):
    """Full cold record+replay DSE under one narration mode."""
    from repro.sim.core import set_narration_mode

    prev = set_narration_mode(mode)
    try:
        best = float("inf")
        result = None
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="bench-cold-") as td:
                t0 = time.perf_counter()
                result = run_dse(collection, record_dir=td)
                best = min(best, time.perf_counter() - t0)
    finally:
        set_narration_mode(prev)
    digest = json.dumps(result.cycles, sort_keys=True)
    return {"best_s": round(best, 6)}, digest


def run_cold(args) -> int:
    from repro.sim.core import narration_flush_count

    collection = small_collection(args.matrices, seed=9, max_n=args.max_n)
    n_ops = 40_000 if args.smoke else 200_000

    print(f"cold end-to-end: Fig. 9 DSE record+replay "
          f"({args.matrices} matrices, max_n={args.max_n}) ...")
    cold = {}
    cold_prints = {}
    flushes_before = narration_flush_count()
    for mode in ("scalar", "batched"):
        cold[mode], cold_prints[mode] = bench_cold_dse(
            mode, collection, max(1, args.repeats // 2)
        )
        print(f"  {mode:<8} {cold[mode]['best_s']*1e3:8.1f}ms")
    cold_flushes = narration_flush_count() - flushes_before

    print(f"\nrecord-path narration: {n_ops} ops, Fig. 9 mix ...")
    narr = {}
    narr_prints = {}
    for mode in ("scalar", "batched"):
        narr[mode], narr_prints[mode] = bench_narration(
            mode, n_ops, args.repeats
        )
        print(f"  {mode:<8} {narr[mode]['best_s']*1e3:8.1f}ms "
              f"({narr[mode]['ops_per_s']/1e3:.0f} kops/s)")

    cold_speedup = cold["scalar"]["best_s"] / cold["batched"]["best_s"]
    narration_speedup = narr["scalar"]["best_s"] / narr["batched"]["best_s"]
    cold_identical = cold_prints["scalar"] == cold_prints["batched"]
    narr_identical = narr_prints["scalar"] == narr_prints["batched"]
    print(f"\ncold end-to-end speedup (batched over scalar): "
          f"{cold_speedup:.2f}x  (shared functional sim + cache walk + IO)")
    print(f"record-path narration speedup: {narration_speedup:.2f}x")
    print(f"bit-identical (DSE tables / narration totals): "
          f"{cold_identical} / {narr_identical}")

    summary = {
        "workload": {
            "matrices": args.matrices,
            "max_n": args.max_n,
            "narration_ops": n_ops,
            "repeats": args.repeats,
            "batched_flushes": cold_flushes,
        },
        "cold_end_to_end": cold,
        "narration": narr,
        "cold_speedup": round(cold_speedup, 2),
        "narration_speedup": round(narration_speedup, 2),
        "bit_identical": cold_identical and narr_identical,
    }
    out = Path(args.json) if args.json else DEFAULT_COLD_JSON
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nwrote {out}")

    if args.check:
        failures = []
        if not cold_identical:
            failures.append("batched narration changed the DSE cycle tables")
        if not narr_identical:
            failures.append("narration modes disagreed on priced totals")
        if narration_speedup < 3.0:
            failures.append(
                f"narration speedup {narration_speedup:.2f}x below the 3x gate"
            )
        if cold_speedup < 0.8:
            failures.append(
                f"cold end-to-end regressed: {cold_speedup:.2f}x (< 0.8x)"
            )
        if failures:
            print("\nCHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("\nCHECK PASSED: bit-identical, narration >= 3x, "
              "no cold regression")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--matrices", type=int, default=6,
                        help="collection size (default 6)")
    parser.add_argument("--max-n", type=int, default=512,
                        help="matrix size cap (default 512)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per phase (default 5)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload (3 matrices, max_n 160)")
    parser.add_argument("--cold", action="store_true",
                        help="benchmark the record path: cold end-to-end "
                             "DSE plus narration throughput, scalar vs "
                             "batched narration mode")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless warm speedup >= 5x and "
                             "both engines price identically (with --cold: "
                             "narration >= 3x, bit-identical, no cold "
                             "end-to-end regression)")
    parser.add_argument("--json", metavar="PATH",
                        help=f"summary JSON path (default {DEFAULT_JSON}, "
                             f"with --cold {DEFAULT_COLD_JSON})")
    args = parser.parse_args(argv)
    if args.smoke:
        args.matrices, args.max_n = 3, 160
    if args.cold:
        return run_cold(args)

    collection = small_collection(args.matrices, seed=9, max_n=args.max_n)
    port_variants = {}
    for cfg in dse_configs():
        port_variants.setdefault(cfg.sram_kb, []).append(cfg)

    with tempfile.TemporaryDirectory(prefix="bench-columnar-") as td:
        print(f"recording the Fig. 9 DSE ({args.matrices} matrices, "
              f"max_n={args.max_n}) ...")
        run_dse(collection, record_dir=td)
        paths = sorted(Path(td).rglob("*.npz"))
        total_ops = sum(len(r.columnar()) for r in _load_all(paths))
        print(f"store: {len(paths)} artifacts, {total_ops} recorded ops\n")

        rows = {}
        prints = {}
        for engine in ("scalar", "columnar"):
            rows[engine], prints[engine] = bench_engine(
                engine, paths, port_variants, args.repeats
            )
            r = rows[engine]
            print(f"  {engine:<9} warm={r['warm_s']*1e3:8.2f}ms "
                  f"cold={r['cold_s']*1e3:8.2f}ms "
                  f"({r['replays']} replays)")

    identical = prints["scalar"] == prints["columnar"]
    warm_speedup = rows["scalar"]["warm_s"] / rows["columnar"]["warm_s"]
    cold_speedup = rows["scalar"]["cold_s"] / rows["columnar"]["cold_s"]
    print(f"\nwarm replay speedup (columnar over scalar): "
          f"{warm_speedup:.1f}x")
    print(f"cold replay speedup (incl. shared artifact IO): "
          f"{cold_speedup:.1f}x")
    print(f"engines bit-identical across all replays: {identical}")

    summary = {
        "workload": {
            "matrices": args.matrices,
            "max_n": args.max_n,
            "artifacts": len(paths),
            "recorded_ops": total_ops,
            "repeats": args.repeats,
        },
        "engines": rows,
        "warm_speedup": round(warm_speedup, 2),
        "cold_speedup": round(cold_speedup, 2),
        "bit_identical": identical,
    }
    out = Path(args.json) if args.json else DEFAULT_JSON
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nwrote {out}")

    if args.check:
        failures = []
        if not identical:
            failures.append("engines disagreed on at least one replay")
        if warm_speedup < 5.0:
            failures.append(
                f"warm speedup {warm_speedup:.1f}x below the 5x gate"
            )
        if failures:
            print("\nCHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("\nCHECK PASSED: bit-identical and warm speedup >= 5x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
