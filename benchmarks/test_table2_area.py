"""T2 — Table II: SSPM area and leakage per configuration (22 nm).

The area model reproduces the paper's six synthesized points exactly and
the chip-level overhead claims (~5 % / ~3 % of a Haswell core for the
16 KB configurations).
"""

import pytest
from conftest import save_artifact

from repro.via import (
    PUBLISHED_SYNTHESIS,
    ViaConfig,
    area_mm2,
    core_area_overhead,
    leakage_mw,
    table2,
)


def test_table2_artifact(benchmark, results_dir):
    text = benchmark(table2)
    save_artifact(results_dir, "table2_area", text)
    for (kb, ports), (area, leak) in PUBLISHED_SYNTHESIS.items():
        cfg = ViaConfig(kb, ports)
        assert area_mm2(cfg) == pytest.approx(area)
        assert leakage_mw(cfg) == pytest.approx(leak)
    # headline: the selected 16_2p point is 0.515 mm^2 / 0.5 mW
    assert area_mm2(ViaConfig(16, 2)) == pytest.approx(0.515)
    assert leakage_mw(ViaConfig(16, 2)) == pytest.approx(0.50)
    # chip-level overhead claims
    assert core_area_overhead(ViaConfig(16, 4)) == pytest.approx(0.05, abs=0.01)
    assert core_area_overhead(ViaConfig(16, 2)) == pytest.approx(0.03, abs=0.01)
