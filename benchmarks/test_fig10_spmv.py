"""F10 — Figure 10: SpMV speedup per format across block-density categories.

Paper reference: VIA-CSB averages 4.22x over the CSB software baseline;
VIA over the CSR / SPC5 / Sell-C-sigma software implementations averages
1.25x / 1.24x / 1.31x.  Prose claims reproduced here as well (Section
VII-A): CSB VIA-SpMV cuts total energy ~3.8x and raises realized memory
bandwidth ~2.5x.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.eval import (
    aggregate_ratio,
    categorize,
    render_categories,
    render_ratio_line,
    sweep_spmv,
)


pytestmark = pytest.mark.figure


@pytest.fixture(scope="module")
def spmv_records(collection, runner):
    return sweep_spmv(collection, runner=runner)


def test_fig10_artifact(spmv_records, benchmark, results_dir):
    cats = categorize(spmv_records)

    def render():
        text = render_categories(
            "Figure 10 — SpMV speedup by CSB block-density category",
            cats,
            metric_label="nnz/block",
        )
        energy = aggregate_ratio(spmv_records, "energy_ratio", "csb")
        bandwidth = aggregate_ratio(spmv_records, "bandwidth_ratio", "csb")
        text += "\n" + render_ratio_line("CSB energy reduction", energy, 3.8)
        text += "\n" + render_ratio_line("CSB bandwidth increase", bandwidth, 2.5)
        return text

    text = benchmark(render)
    save_artifact(results_dir, "fig10_spmv", text)

    overall = cats.overall
    # CSB wins biggest (paper: 4.22x average)
    assert overall["csb"] == max(overall.values())
    assert 2.5 < overall["csb"] < 10.0
    # the other formats gain modestly (paper ~1.25x)
    for fmt in ("csr", "spc5", "sellcs"):
        assert 1.0 < overall[fmt] < 2.5, f"{fmt}: {overall[fmt]}"
    # prose claims (Section VII-A)
    assert aggregate_ratio(spmv_records, "energy_ratio", "csb") > 1.5
    assert aggregate_ratio(spmv_records, "bandwidth_ratio", "csb") > 1.5
    # all four categories populated
    assert len(cats.rows) == 4
    assert all(row.count > 0 for row in cats.rows)


def test_fig10_single_matrix_benchmark(benchmark, collection):
    """Benchmark one baseline+VIA CSB SpMV pair on one matrix."""
    from repro.formats import CSBMatrix
    from repro.kernels import spmv_csb_baseline, spmv_csb_via
    from repro.via import VIA_16_2P

    spec = collection.specs[0]
    coo = collection.matrix(spec)
    csb = CSBMatrix.from_coo(coo, block_size=VIA_16_2P.csb_block_size)
    x = np.random.default_rng(0).standard_normal(coo.cols)

    def pair():
        return spmv_csb_baseline(csb, x), spmv_csb_via(csb, x)

    base, via = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert base.cycles > via.cycles
