"""Load generator for the ``repro.serve`` simulation service.

Demonstrates the serving tentpole's headline claim: on a sweep-shaped
workload (one SpMA kernel evaluated at 8 SSPM port counts), routing the
requests through the **batched replay** path is strictly faster than
naive per-request simulation, because all 8 configurations share one
op-stream recording — the ports knob only re-prices the stream, it never
changes which operations execute (the PR-2 record/replay invariant).

Two load models, both stdlib-only:

* **closed loop** — ``--clients`` workers submit-and-wait in lockstep;
  measures service capacity (throughput at full utilisation);
* **open loop** — requests arrive on a fixed schedule at ``--rate``
  requests/second regardless of completions; measures latency under a
  target offered load (the model that exposes queueing delay honestly —
  closed loops self-throttle and hide it).

Each mode boots its own server process on an ephemeral port with fresh
cache/record directories, so trials never poison each other.  A third
trial repeats the batched replay workload under a ``--chaos`` fault plan
(workers crashed mid-job, one reply garbled) and reports the pool's
health metrics — restarts, retries, respawn latency — proving the
crash-isolation story under load rather than asserting it.  Run::

    PYTHONPATH=src python benchmarks/bench_serve.py --check

``--check`` exits non-zero unless batched replay beats naive simulation,
the metrics dump shows non-zero replay and cache hits, and the chaos
trial completes every job (zero lost responses) with at least one worker
restart — the PR's acceptance gate, also exercised by CI's serve smoke
job.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import ServeClient, read_ready_file  # noqa: E402
from repro.serve.metrics import percentile  # noqa: E402

PORT_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8)  # the 8-config workload


# ----------------------------------------------------------------------
# server lifecycle


class ServerProcess:
    """A ``python -m repro.serve serve`` child on an ephemeral port."""

    def __init__(
        self, workdir: Path, *, max_queue: int = 256, extra_args: tuple = ()
    ):
        self.workdir = workdir
        ready = workdir / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--ready-file", str(ready),
                "--max-queue", str(max_queue),
                "--cache-dir", str(workdir / "cache"),
                "--record-dir", str(workdir / "recordings"),
                *extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while not ready.exists():
            if self.proc.poll() is not None:
                raise RuntimeError("serve process died during startup")
            if time.monotonic() > deadline:
                self.proc.kill()
                raise RuntimeError("serve process never became ready")
            time.sleep(0.02)
        self.addr = read_ready_file(ready)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# workloads


def sweep_specs(kind: str, *, seed: int, max_n: int) -> list:
    """The 8-config port sweep as individual requests of ``kind``."""
    return [
        {
            "kind": kind,
            "kernel": "spma",
            "count": 1,
            "seed": seed,
            "max_n": max_n,
            "ports": ports,
        }
        for ports in PORT_SWEEP
    ]


# ----------------------------------------------------------------------
# load models


def closed_loop(addr, specs, clients: int):
    """Submit-and-wait workers; returns (elapsed_s, latencies_s)."""
    latencies: list = []
    lock = threading.Lock()
    queue = list(enumerate(specs))

    def worker():
        while True:
            with lock:
                if not queue:
                    return
                _, spec = queue.pop(0)
            with ServeClient(**addr, timeout_s=600) as client:
                t0 = time.monotonic()
                job = client.submit(spec)
                done = client.result(job["job_id"], timeout_s=600)
                dt = time.monotonic() - t0
            if done["state"] != "done":
                raise RuntimeError(f"job failed: {done.get('error')}")
            with lock:
                latencies.append(dt)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.monotonic() - start, latencies


def open_loop(addr, specs, rate_hz: float):
    """Fixed-schedule arrivals at ``rate_hz``; returns (elapsed, lats)."""
    latencies: list = []
    lock = threading.Lock()
    threads = []

    def fire(spec):
        with ServeClient(**addr, timeout_s=600) as client:
            t0 = time.monotonic()
            job = client.submit(spec)
            done = client.result(job["job_id"], timeout_s=600)
            dt = time.monotonic() - t0
        if done["state"] != "done":
            raise RuntimeError(f"job failed: {done.get('error')}")
        with lock:
            latencies.append(dt)

    start = time.monotonic()
    for i, spec in enumerate(specs):
        # arrivals are scheduled, not triggered by completions
        target = start + i / rate_hz
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        t = threading.Thread(target=fire, args=(spec,))
        t.start()
        threads.append(t)
    for t in threads:
        t.join()
    return time.monotonic() - start, latencies


# ----------------------------------------------------------------------
# reporting


def summarize(label: str, elapsed: float, latencies: list) -> dict:
    lats = sorted(latencies)
    row = {
        "label": label,
        "jobs": len(lats),
        "elapsed_s": round(elapsed, 3),
        "throughput_jobs_per_s": round(len(lats) / elapsed, 2),
        "p50_s": round(percentile(lats, 0.50), 3),
        "p95_s": round(percentile(lats, 0.95), 3),
        "p99_s": round(percentile(lats, 0.99), 3),
        "mean_s": round(statistics.mean(lats), 3),
    }
    print(
        f"  {label:<28} {row['jobs']:>3} jobs in {row['elapsed_s']:>6.3f}s"
        f"  ({row['throughput_jobs_per_s']:>6.2f} jobs/s)"
        f"  p50={row['p50_s']:.3f}s p95={row['p95_s']:.3f}s"
        f" p99={row['p99_s']:.3f}s"
    )
    return row


def run_mode(kind: str, label: str, args) -> dict:
    """One isolated server, closed- then open-loop over the sweep."""
    with tempfile.TemporaryDirectory(prefix=f"bench-serve-{kind}-") as tmp:
        with ServerProcess(Path(tmp)) as server:
            specs = sweep_specs(kind, seed=args.seed, max_n=args.max_n)
            closed = summarize(
                f"{label} (closed, c={args.clients})",
                *closed_loop(server.addr, specs, args.clients),
            )
            open_ = summarize(
                f"{label} (open, {args.rate}/s)",
                *open_loop(server.addr, specs, args.rate),
            )
            # a repeated request demonstrates the PR-1 result cache
            with ServeClient(**server.addr, timeout_s=600) as client:
                client.submit(
                    sweep_specs(kind, seed=args.seed, max_n=args.max_n)[0],
                    wait=True, wait_timeout_s=600,
                )
                metrics = client.metrics()
                text = client.metrics_text()
    return {"closed": closed, "open": open_, "metrics": metrics,
            "metrics_text": text}


def run_chaos_trial(args) -> dict:
    """The batched replay workload again, while chaos kills workers.

    The plan crashes two workers mid-job and garbles one reply; the pool
    must retry and respawn so that **every** job still completes — the
    crash-isolation acceptance claim, measured instead of asserted.
    """
    plan = "crash:times=2;corrupt:times=1"
    with tempfile.TemporaryDirectory(prefix="bench-serve-chaos-") as tmp:
        # retries cover the worst case of every fault landing on one job
        with ServerProcess(
            Path(tmp), extra_args=("--chaos", plan, "--pool-retries", "4")
        ) as server:
            specs = sweep_specs("replay", seed=args.seed, max_n=args.max_n)
            closed = summarize(
                f"replay under chaos (c={args.clients})",
                *closed_loop(server.addr, specs, args.clients),
            )
            with ServeClient(**server.addr, timeout_s=600) as client:
                metrics = client.metrics()
    pool = {
        name: metrics[name]
        for name in (
            "pool_worker_restarts", "pool_retries",
            "pool_corrupt_replies", "pool_timeout_kills",
            "pool_poison_jobs", "pool_workers_alive",
        )
    }
    print(f"  chaos plan: {plan}")
    print(f"  pool after chaos: restarts={pool['pool_worker_restarts']:g} "
          f"retries={pool['pool_retries']:g} "
          f"corrupt={pool['pool_corrupt_replies']:g} "
          f"alive={pool['pool_workers_alive']:g}")
    print("  respawn latency: "
          + " ".join(f"{k}={v:.3g}s" for k, v in
                     metrics["pool_respawn_seconds"].items()
                     if k in ("p50", "p95", "max")))
    return {
        "plan": plan,
        "closed": closed,
        "pool": pool,
        "respawn_seconds": metrics["pool_respawn_seconds"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop concurrency (default 8)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="open-loop arrival rate, req/s (default 16)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--max-n", type=int, default=128,
                        help="matrix size cap (default 128: fast, CI-safe)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless batched replay wins "
                             "and replay/cache hits are non-zero")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the summary as JSON")
    args = parser.parse_args(argv)

    print(f"workload: spma port sweep over {len(PORT_SWEEP)} configs "
          f"(seed={args.seed}, max_n={args.max_n})")

    print("\nnaive per-request simulation (no shared recording):")
    naive = run_mode("simulate", "simulate", args)

    print("\nbatched replay (one recording, re-priced per config):")
    batched = run_mode("replay", "replay", args)

    print("\nbatched replay under chaos (workers crashed mid-load):")
    chaos = run_chaos_trial(args)

    n_tput = naive["closed"]["throughput_jobs_per_s"]
    b_tput = batched["closed"]["throughput_jobs_per_s"]
    speedup = b_tput / n_tput if n_tput else float("inf")
    replay_hits = batched["metrics"]["replay_hits"]
    cache_hits = batched["metrics"]["cache_hits"]

    print(f"\nclosed-loop speedup (batched replay / naive): {speedup:.2f}x")
    print(f"replay hits: {replay_hits}  cache hits: {cache_hits}  "
          f"batches: {batched['metrics']['batches_executed']}")
    print("\nserver metrics after the batched trial:")
    print("\n".join("  " + line
                    for line in batched["metrics_text"].splitlines()))

    summary = {
        "workload": {"configs": list(PORT_SWEEP), "seed": args.seed,
                     "max_n": args.max_n},
        "naive": {k: naive[k] for k in ("closed", "open", "metrics")},
        "batched": {k: batched[k] for k in ("closed", "open", "metrics")},
        "chaos": chaos,
        "closed_loop_speedup": round(speedup, 3),
    }
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    if args.check:
        failures = []
        if b_tput <= n_tput:
            failures.append(
                f"batched throughput {b_tput} <= naive {n_tput}"
            )
        if replay_hits <= 0:
            failures.append("no replay hits recorded")
        if cache_hits <= 0:
            failures.append("no cache hits recorded")
        if chaos["closed"]["jobs"] != len(PORT_SWEEP):
            failures.append(
                f"chaos trial lost responses: {chaos['closed']['jobs']} "
                f"of {len(PORT_SWEEP)} jobs completed"
            )
        if chaos["pool"]["pool_worker_restarts"] < 1:
            failures.append(
                "chaos plan never fired (no worker restarts recorded)"
            )
        if failures:
            print("\nCHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("\nCHECK PASSED: batched replay strictly faster, "
              "replay/cache hits non-zero, chaos trial lost nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
