"""F11b — SpMM speedup (Section VII-C).

Paper reference: VIA-SpMM averages 6.00x over the inner-product CSRxCSC
implementation with software index matching (Algorithm 3).
"""

import os

import pytest
from conftest import save_artifact

from repro.eval import categorize, render_categories, sweep_spmm
from repro.matrices import MatrixCollection


pytestmark = pytest.mark.figure


@pytest.fixture(scope="module")
def spmm_records(runner):
    # smaller, denser matrices: the golden dense product is cubic
    count = int(os.environ.get("REPRO_BENCH_MATRICES", "24")) // 2
    coll = MatrixCollection(max(count, 6), seed=77, min_n=192, max_n=768)
    return sweep_spmm(coll, max_n=1024, runner=runner)


def test_fig11b_artifact(spmm_records, benchmark, results_dir):
    cats = categorize(spmm_records)

    def render():
        return render_categories(
            "SpMM speedup by nnz-per-row category (paper avg: 6.00x)",
            cats,
            metric_label="nnz/row",
        )

    text = benchmark(render)
    save_artifact(results_dir, "fig11b_spmm", text)

    avg = cats.overall["csr"]
    assert 3.0 < avg < 12.0  # paper: 6.00x
    for row in cats.rows:
        assert row.speedup["csr"] > 1.5


def test_fig11b_single_pair_benchmark(benchmark):
    from repro.formats import CSCMatrix, CSRMatrix
    from repro.kernels import spmm_csr_baseline, spmm_via
    from repro.matrices import random_uniform

    a = CSRMatrix.from_coo(random_uniform(400, 0.02, 1))
    b = CSCMatrix.from_coo(random_uniform(400, 0.02, 2))

    def pair():
        return spmm_csr_baseline(a, b), spmm_via(a, b)

    base, via = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert base.cycles > via.cycles
