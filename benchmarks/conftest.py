"""Shared fixtures for the per-artifact benchmark modules.

Scaling knobs (environment variables):

* ``REPRO_BENCH_MATRICES`` — matrices in the evaluation collection
  (default 24; the paper uses 1,024).
* ``REPRO_BENCH_MAXN`` — largest matrix dimension (default 2048; the paper
  caps at 20,000).
* ``REPRO_FULL_COLLECTION=1`` — use the full 1,024-matrix paper-envelope
  collection (hours of runtime in pure Python).

Sweep-runner knobs (see :mod:`repro.eval.runner`):

* ``REPRO_SWEEP_WORKERS`` — process-pool size for the sweeps (default 1);
* ``REPRO_SWEEP_CACHE`` — result-cache directory (default
  ``benchmarks/.sweep-cache``; entries are keyed by matrix spec, kernel,
  hardware configs and a code fingerprint, so edits invalidate
  automatically);
* ``REPRO_SWEEP_NO_CACHE=1`` — recompute everything;
* ``REPRO_SWEEP_JOURNAL`` — JSONL run journal (default
  ``benchmarks/results/sweep_journal.jsonl``, truncated per session).

Every artifact module writes its rendered table/figure into
``benchmarks/results/`` so EXPERIMENTS.md can quote the regenerated data.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import RunnerConfig
from repro.matrices import MatrixCollection, paper_collection

RESULTS_DIR = Path(__file__).parent / "results"
SWEEP_CACHE_DIR = Path(__file__).parent / ".sweep-cache"
SWEEP_JOURNAL = RESULTS_DIR / "sweep_journal.jsonl"


def bench_collection() -> MatrixCollection:
    if os.environ.get("REPRO_FULL_COLLECTION") == "1":
        return paper_collection()
    count = int(os.environ.get("REPRO_BENCH_MATRICES", "24"))
    max_n = int(os.environ.get("REPRO_BENCH_MAXN", "2048"))
    return MatrixCollection(count, seed=2021, min_n=192, max_n=max_n)


def bench_runner() -> RunnerConfig:
    """Runner policy for figure regeneration: cached by default."""
    RESULTS_DIR.mkdir(exist_ok=True)
    journal = os.environ.get("REPRO_SWEEP_JOURNAL", str(SWEEP_JOURNAL))
    return RunnerConfig.from_env(
        cache_dir=os.environ.get("REPRO_SWEEP_CACHE", str(SWEEP_CACHE_DIR)),
        journal_path=journal,
    )


@pytest.fixture(scope="session")
def collection() -> MatrixCollection:
    return bench_collection()


@pytest.fixture(scope="session")
def runner() -> RunnerConfig:
    config = bench_runner()
    if config.journal_path and Path(config.journal_path).exists():
        Path(config.journal_path).unlink()  # fresh journal per session
    return config


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Write a rendered artifact and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
