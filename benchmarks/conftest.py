"""Shared fixtures for the per-artifact benchmark modules.

Scaling knobs (environment variables):

* ``REPRO_BENCH_MATRICES`` — matrices in the evaluation collection
  (default 24; the paper uses 1,024).
* ``REPRO_BENCH_MAXN`` — largest matrix dimension (default 2048; the paper
  caps at 20,000).
* ``REPRO_FULL_COLLECTION=1`` — use the full 1,024-matrix paper-envelope
  collection (hours of runtime in pure Python).

Every artifact module writes its rendered table/figure into
``benchmarks/results/`` so EXPERIMENTS.md can quote the regenerated data.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.matrices import MatrixCollection, paper_collection

RESULTS_DIR = Path(__file__).parent / "results"


def bench_collection() -> MatrixCollection:
    if os.environ.get("REPRO_FULL_COLLECTION") == "1":
        return paper_collection()
    count = int(os.environ.get("REPRO_BENCH_MATRICES", "24"))
    max_n = int(os.environ.get("REPRO_BENCH_MAXN", "2048"))
    return MatrixCollection(count, seed=2021, min_n=192, max_n=max_n)


@pytest.fixture(scope="session")
def collection() -> MatrixCollection:
    return bench_collection()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Write a rendered artifact and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
