"""Ablations — sensitivity of the headline results to the design choices.

These go beyond the paper's figures and probe the knobs DESIGN.md calls
out:

* **gather fixed cost** — the paper's 22-cycle claim (Section III-A) is
  the single most important baseline constant; halving/doubling it moves
  the CSB SpMV speedup accordingly but never flips the winner;
* **SSPM ports 1..8** — diminishing returns past the published 2-4;
* **CSB block size** — blocks must track the scratchpad capacity: halving
  beta below capacity/2 costs preload traffic (the paper's observation 1);
* **commit serialization** — VIA's commit-time execution (Section IV-E)
  costs a fixed overhead per instruction; the ablation shows the headline
  survives even at 4x that overhead.
"""

import dataclasses

import numpy as np
import pytest
from conftest import save_artifact

from repro.eval import render_table
from repro.formats import CSBMatrix
from repro.kernels import spmv_csb_baseline, spmv_csb_via
from repro.matrices import blocked
from repro.sim import MachineConfig
from repro.via import VIA_16_2P, ViaConfig

pytestmark = pytest.mark.figure


@pytest.fixture(scope="module")
def problem():
    coo = blocked(2048, 32, 0.03, 0.5, 42)
    x = np.random.default_rng(0).standard_normal(coo.cols)
    return coo, x


def csb_for(config: ViaConfig, coo):
    return CSBMatrix.from_coo(coo, block_size=config.csb_block_size)


def test_ablation_gather_latency(problem, benchmark, results_dir):
    """Speedup vs the gather fixed cost (paper value: 22 cycles)."""
    coo, x = problem
    csb = csb_for(VIA_16_2P, coo)

    def sweep():
        rows = []
        for latency in (6, 11, 22, 44):
            machine = MachineConfig(gather_base_latency=latency)
            base = spmv_csb_baseline(csb, x, machine)
            via = spmv_csb_via(csb, x, machine, VIA_16_2P)
            rows.append([f"{latency} cyc", f"{base.cycles / via.cycles:.2f}x"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        "Ablation — CSB SpMV speedup vs gather fixed cost (paper: 22)",
        ["gather latency", "speedup"],
        rows,
    )
    save_artifact(results_dir, "ablation_gather", text)
    speedups = [float(r[1][:-1]) for r in rows]
    assert speedups == sorted(speedups)  # monotone in gather cost
    assert speedups[0] > 1.0  # VIA still wins with 6-cycle gathers


def test_ablation_port_scaling(problem, benchmark, results_dir):
    """VIA cycles vs port count: diminishing returns past the paper's 2-4."""
    coo, x = problem

    def sweep():
        out = []
        for ports in (1, 2, 4, 8):
            cfg = ViaConfig(16, ports)
            res = spmv_csb_via(csb_for(cfg, coo), x, via_config=cfg)
            out.append((ports, res.cycles))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cycles = {p: c for p, c in data}
    rows = [
        [f"{p} ports", f"{c:,.0f}", f"{cycles[1] / c:.2f}x"] for p, c in data
    ]
    save_artifact(
        results_dir,
        "ablation_ports",
        render_table(
            "Ablation — VIA CSB SpMV vs SSPM port count",
            ["config", "cycles", "speedup vs 1 port"],
            rows,
        ),
    )
    assert cycles[2] < cycles[1]
    assert cycles[4] <= cycles[2]
    # diminishing returns: 1->2 ports gains more than 4->8
    assert cycles[1] / cycles[2] > cycles[4] / cycles[8] - 0.05


def test_ablation_block_size(problem, benchmark, results_dir):
    """CSB block size vs scratchpad capacity (paper observation 1)."""
    coo, x = problem
    cap = VIA_16_2P.csb_block_size  # 2048 = half the 16 KB scratchpad

    def sweep():
        out = []
        for beta in (cap // 8, cap // 4, cap // 2, cap):
            csb = CSBMatrix.from_coo(coo, block_size=beta)
            res = spmv_csb_via(csb, x, via_config=VIA_16_2P)
            out.append((beta, res.cycles))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"beta={b}", f"{c:,.0f}"] for b, c in data]
    save_artifact(
        results_dir,
        "ablation_blocksize",
        render_table(
            "Ablation — VIA CSB SpMV vs block size (capacity-matched = best)",
            ["block size", "cycles"],
            rows,
        ),
    )
    cycles = dict(data)
    # the capacity-matched block size beats the smallest one
    assert cycles[cap] < cycles[cap // 8]


def test_ablation_commit_overhead(problem, benchmark, results_dir):
    """Commit-time execution overhead (Section IV-E) sensitivity."""
    from repro.sim import calibration as cal

    coo, x = problem
    csb = csb_for(VIA_16_2P, coo)

    def sweep():
        out = []
        original = cal.COMMIT_ISSUE_OVERHEAD
        try:
            for overhead in (0, 1, 2, 4):
                cal.COMMIT_ISSUE_OVERHEAD = overhead
                base = spmv_csb_baseline(csb, x)
                via = spmv_csb_via(csb, x)
                out.append((overhead, base.cycles / via.cycles))
        finally:
            cal.COMMIT_ISSUE_OVERHEAD = original
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{o} cyc/instr", f"{s:.2f}x"] for o, s in data]
    save_artifact(
        results_dir,
        "ablation_commit",
        render_table(
            "Ablation — CSB SpMV speedup vs commit handshake overhead",
            ["commit overhead", "speedup"],
            rows,
        ),
    )
    speedups = dict(data)
    assert speedups[4] > 1.5  # headline survives 4x the modeled overhead
    assert speedups[0] >= speedups[4]  # and overhead only hurts
