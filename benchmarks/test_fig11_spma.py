"""F11 — Figure 11: SpMA speedup across nnz-per-row categories.

Paper reference: VIA-SpMA averages 6.14x over the vectorized Eigen-style
CSR merge, with the categories sorted by non-zero elements per row.
"""

import pytest
from conftest import save_artifact

from repro.eval import categorize, render_categories, sweep_spma


pytestmark = pytest.mark.figure


@pytest.fixture(scope="module")
def spma_records(collection, runner):
    return sweep_spma(collection, runner=runner)


def test_fig11_artifact(spma_records, benchmark, results_dir):
    cats = categorize(spma_records)

    def render():
        return render_categories(
            "Figure 11 — SpMA speedup by nnz-per-row category",
            cats,
            metric_label="nnz/row",
        ) + "\n(paper average: 6.14x)"

    text = benchmark(render)
    save_artifact(results_dir, "fig11_spma", text)

    avg = cats.overall["csr"]
    assert 2.5 < avg < 10.0  # paper: 6.14x — VIA wins by a large factor
    for row in cats.rows:
        assert row.speedup["csr"] > 1.5


def test_fig11_single_pair_benchmark(benchmark, collection):
    from repro.formats import CSRMatrix
    from repro.kernels import spma_csr_baseline, spma_via
    from repro.matrices import MatrixSpec

    spec = collection.specs[0]
    a_coo = collection.matrix(spec)
    b_coo = MatrixSpec(
        spec.name + "_b", spec.domain, spec.n, spec.seed + 1, spec.params
    ).build()
    if b_coo.shape != a_coo.shape:
        pytest.skip("sibling generator rounded the dimension")
    a, b = CSRMatrix.from_coo(a_coo), CSRMatrix.from_coo(b_coo)

    def pair():
        return spma_csr_baseline(a, b), spma_via(a, b)

    base, via = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert base.cycles > via.cycles
