"""F9 — Figure 9: design-space exploration of SSPM size and ports.

Sweeps the four configurations (4_2p, 4_4p, 16_2p, 16_4p) over the three
sparse kernels and reports each kernel's speedup normalized to its 4_2p
configuration.  Paper reference points: SpMV +2 % (4_4p), +26 % (16_2p),
+33 % (16_4p); SpMA +4 %/+16 %/+20 %; SpMM +8 %/+5 %/+11 % — the ordering
(16_4p best overall, ports mattering most for SpMM) is the reproduced
shape.
"""

import pytest
from conftest import save_artifact

from repro.eval import render_dse, run_dse
from repro.matrices import MatrixCollection, dse_collection


def spmm_dse_collection() -> MatrixCollection:
    """Smaller but denser matrices: SpMM's golden product is cubic."""
    return MatrixCollection(6, seed=99, min_n=256, max_n=768)


pytestmark = pytest.mark.figure


@pytest.fixture(scope="module")
def dse_result(runner):
    return run_dse(
        dse_collection(),
        spmm_collection=spmm_dse_collection(),
        spmm_max_n=1024,
        runner=runner,
    )


def test_fig9_artifact(dse_result, benchmark, results_dir):
    text = benchmark(lambda: render_dse(dse_result))
    save_artifact(results_dir, "fig9_dse", text)

    # best configuration overall is 16_4p (paper Section VI-A)
    for kernel in ("spmv", "spma"):
        speedups = dse_result.normalized_speedup(kernel)
        assert max(speedups, key=speedups.get) == "16_4p", kernel

    # SpMV: bigger SSPM helps even at equal ports (capacity effect)
    s = dse_result.normalized_speedup("spmv")
    assert s["16_2p"] > 1.0
    assert s["16_4p"] >= s["16_2p"]

    # SpMM varies with ports, barely with size (paper Section VI-A)
    s = dse_result.normalized_speedup("spmm")
    port_gain = s["16_4p"] / max(s["16_2p"], 1e-9)
    size_gain = s["16_2p"] / max(s["4_2p"], 1e-9)
    assert port_gain >= size_gain - 0.02

    # no configuration regresses materially anywhere
    for kernel in ("spmv", "spma", "spmm"):
        for cfg, sp in dse_result.normalized_speedup(kernel).items():
            assert sp > 0.9, f"{kernel}/{cfg} regressed: {sp}"


def test_fig9_single_slice_benchmark(benchmark):
    """One-shot benchmark of a single-config, single-kernel DSE slice."""
    from repro.eval import sweep_spmv
    from repro.via import VIA_16_2P

    coll = MatrixCollection(3, seed=5, min_n=256, max_n=768)

    def slice_():
        return sweep_spmv(coll, formats=("csb",), via_config=VIA_16_2P)

    recs = benchmark.pedantic(slice_, rounds=1, iterations=1)
    assert len(recs) == 3
